// Package chaos is the deterministic fault-injection layer for the
// multi-process backend's three substrates: the MPRW wire protocol
// (internal/transport), the durable checkpoint store (internal/durable) and
// the supervisor's process fleet (internal/supervise).
//
// A Plan is parsed from a compact spec in the same grammar family as
// mpc.ParseFaultPlan, with every part prefixed by the substrate it attacks:
//
//	wire:corrupt@R:W   flip a seeded byte of worker W's round-R frame, then
//	                   sever its uplink (the supervisor sees ErrFraming)
//	wire:trunc@R:W     truncate that frame at a seeded offset and sever
//	wire:dup@R:W       deliver worker W's round-R frame twice (peers must
//	                   skip the stale copy)
//	wire:delay@R:W     hold worker W's round-R frame until its next frame
//	                   passes (peers receive them reordered)
//	wire:reorder@R:W   downlink: deliver worker W the relayed round-R frames
//	                   after a later round's frame (future-frame stash)
//	wire:hbdrop@N:W    drop worker W's N-th heartbeat frame
//	wire:hbgarble@N:W  garble the telemetry payload of worker W's N-th
//	                   heartbeat (the frame itself stays valid)
//	disk:torn@R:W      worker W's round-R checkpoint write is silently torn
//	                   (success reported, prefix on disk)
//	disk:enospc@R:W    that write fails with ENOSPC
//	disk:fsyncerr@R:W  that file's fsync fails
//	disk:renamecrash@R:W  the temp-to-final rename fails (temp left behind)
//	disk:manifesttorn@R:W the manifest update after installing the round-R
//	                   checkpoint is silently torn
//	proc:kill@R:W      SIGKILL worker W when its round-R frame arrives (the
//	                   supervisor's KillAt, in plan grammar)
//	proc:flap@R:W      kill worker W every time it reaches round R — on
//	                   every restart too — modeling a deterministic crash
//	                   loop the quarantine machinery must catch
//
// Every decision is a pure function of (plan, seed, event identity): byte
// offsets and garble bytes derive from the seed via SplitMix64, wire and
// disk events fire once (disk events only on a worker's first incarnation,
// so a restarted worker's retry is clean), and nothing reads the wall clock
// or draws ambient randomness. The package's contract is the repo's
// bit-identity oracle: every survivable plan yields members, canonical
// Stats and trace bytes identical to the fault-free run; every
// non-survivable plan yields a structured error, never a panic or a
// silently wrong answer. Simulated algorithm-level faults (machine crashes,
// message drops inside the model) are deliberately out of scope — that is
// mpc.FaultPlan's grammar, composed separately via -faults.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// WireOp enumerates frame-level events applied by the supervisor-side
// interposer (see Wire).
type WireOp uint8

const (
	// WireCorrupt flips one seeded byte of the target frame's encoding and
	// severs the uplink after it: the supervisor's reader fails with
	// transport.ErrFraming and declares the worker crashed.
	WireCorrupt WireOp = iota + 1
	// WireTrunc emits a seeded-length prefix of the frame and severs.
	WireTrunc
	// WireDup delivers the frame twice; receivers exercise stale-skip.
	WireDup
	// WireDelay holds the frame until the worker's next frame passes.
	WireDelay
	// WireReorder (downlink) holds the relayed frames for the target round
	// until a later round's frame passes, exercising the future-frame stash.
	WireReorder
	// WireHBDrop drops the worker's N-th heartbeat frame.
	WireHBDrop
	// WireHBGarble replaces the N-th heartbeat's telemetry payload with
	// seeded junk inside a correctly-framed (CRC-valid) frame.
	WireHBGarble
)

// DiskOp enumerates durable-store events applied inside the worker process
// via the durable.FS seam (see NewDiskFS).
type DiskOp uint8

const (
	// DiskTorn silently truncates the checkpoint data write: Sync and Close
	// succeed, the file is installed, and only decode-time CRC/truncation
	// checks can catch it.
	DiskTorn DiskOp = iota + 1
	// DiskENOSPC fails the checkpoint data write with ENOSPC.
	DiskENOSPC
	// DiskFsyncErr fails the checkpoint data file's fsync.
	DiskFsyncErr
	// DiskRenameCrash fails the temp-to-final rename, leaving the temp file
	// behind — the on-disk state of a crash between write and rename.
	DiskRenameCrash
	// DiskManifestTorn silently truncates the manifest update that follows
	// installing the target round's checkpoint.
	DiskManifestTorn
)

// ProcOp enumerates process-level events.
type ProcOp uint8

const (
	// ProcKill kills the worker once when its frame for a round >= the
	// target arrives (the supervisor's KillAt in plan grammar).
	ProcKill ProcOp = iota + 1
	// ProcFlap kills the worker every time its frame for a round >= the
	// target arrives, before the frame is processed — a deterministic crash
	// loop pinned at the same committed round on every restart.
	ProcFlap
)

// WireEvent is one wire-layer injection. Round is the Messages round for
// corrupt/trunc/dup/delay/reorder and the 1-based heartbeat ordinal for
// hbdrop/hbgarble.
type WireEvent struct {
	Op     WireOp
	Round  int
	Worker int
}

// DiskEvent is one durable-store injection, keyed by the barrier round
// passed to Persist.
type DiskEvent struct {
	Op     DiskOp
	Round  int
	Worker int
}

// ProcEvent is one process-level injection.
type ProcEvent struct {
	Op     ProcOp
	Round  int
	Worker int
}

// Plan is a parsed, deterministic chaos schedule. The zero value (and a nil
// plan) injects nothing. A Plan is stateless and may be shared; once-only
// firing state lives in the runtime objects built from it (Wire, DiskFS).
type Plan struct {
	// Spec is the canonical input string, re-serialized into worker
	// processes so both sides of the pipe parse the identical schedule.
	Spec string
	// Seed keys the byte-offset and junk-byte choices.
	Seed int64

	Wire []WireEvent
	Disk []DiskEvent
	Proc []ProcEvent
}

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	return p != nil && (len(p.Wire) > 0 || len(p.Disk) > 0 || len(p.Proc) > 0)
}

// String implements fmt.Stringer.
func (p *Plan) String() string {
	if !p.Enabled() {
		return "chaos(off)"
	}
	return fmt.Sprintf("chaos(seed=%d wire=%d disk=%d proc=%d)", p.Seed, len(p.Wire), len(p.Disk), len(p.Proc))
}

// HasWire reports whether any wire events exist (the supervisor only
// interposes on worker pipes when they do).
func (p *Plan) HasWire() bool { return p != nil && len(p.Wire) > 0 }

// HasDisk reports whether any disk events target worker.
func (p *Plan) HasDisk(worker int) bool {
	if p == nil {
		return false
	}
	for _, ev := range p.Disk {
		if ev.Worker == worker {
			return true
		}
	}
	return false
}

// Kills returns the proc:kill events (the supervisor merges them into its
// KillAt schedule).
func (p *Plan) Kills() []ProcEvent {
	if p == nil {
		return nil
	}
	var kills []ProcEvent
	for _, ev := range p.Proc {
		if ev.Op == ProcKill {
			kills = append(kills, ev)
		}
	}
	return kills
}

// FlapsAt reports whether a proc:flap event kills worker at round: flap
// events fire on every frame for a round at or beyond the target, every
// generation, which pins the crash at the same committed round forever.
func (p *Plan) FlapsAt(worker, round int) bool {
	if p == nil {
		return false
	}
	for _, ev := range p.Proc {
		if ev.Op == ProcFlap && ev.Worker == worker && round >= ev.Round {
			return true
		}
	}
	return false
}

// MaxWorker returns the largest worker id any event targets (-1 when none).
func (p *Plan) MaxWorker() int {
	maxW := -1
	if p == nil {
		return maxW
	}
	for _, ev := range p.Wire {
		if ev.Worker > maxW {
			maxW = ev.Worker
		}
	}
	for _, ev := range p.Disk {
		if ev.Worker > maxW {
			maxW = ev.Worker
		}
	}
	for _, ev := range p.Proc {
		if ev.Worker > maxW {
			maxW = ev.Worker
		}
	}
	return maxW
}

// wireOps and diskOps and procOps name the grammar's operations.
var wireOps = map[string]WireOp{
	"corrupt":  WireCorrupt,
	"trunc":    WireTrunc,
	"dup":      WireDup,
	"delay":    WireDelay,
	"reorder":  WireReorder,
	"hbdrop":   WireHBDrop,
	"hbgarble": WireHBGarble,
}

var diskOps = map[string]DiskOp{
	"torn":         DiskTorn,
	"enospc":       DiskENOSPC,
	"fsyncerr":     DiskFsyncErr,
	"renamecrash":  DiskRenameCrash,
	"manifesttorn": DiskManifestTorn,
}

var procOps = map[string]ProcOp{
	"kill": ProcKill,
	"flap": ProcFlap,
}

// Parse builds a Plan from a compact spec such as
//
//	"wire:dup@6:1,disk:torn@4:1,proc:kill@10:2"
//
// Every comma-separated part must carry a wire:, disk: or proc: prefix;
// simulated model-level faults belong to mpc.ParseFaultPlan's unprefixed
// grammar and are rejected here with a pointer to -faults. An empty spec
// (or "off"/"none") returns a disabled (nil) plan.
func Parse(spec string, seed int64) (*Plan, error) {
	trimmed := strings.TrimSpace(spec)
	if trimmed == "" || trimmed == "off" || trimmed == "none" {
		return nil, nil
	}
	p := &Plan{Spec: trimmed, Seed: seed}
	for _, part := range strings.Split(trimmed, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		layer, rest, ok := strings.Cut(part, ":")
		if !ok || strings.ContainsAny(layer, "@=") {
			// "crash=0.02" or "kill@5:1" is mpc.FaultPlan's unprefixed
			// grammar, not a substrate layer.
			return nil, fmt.Errorf("chaos: spec %q: want layer:op@ROUND:WORKER with layer wire, disk or proc (simulated model faults go to -faults)", part)
		}
		op, tail, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("chaos: spec %q: want %s:OP@ROUND:WORKER", part, layer)
		}
		round, worker, err := parseRoundWorker(part, tail)
		if err != nil {
			return nil, err
		}
		switch layer {
		case "wire":
			wop, ok := wireOps[op]
			if !ok {
				return nil, fmt.Errorf("chaos: spec %q: unknown wire op %q (want corrupt, trunc, dup, delay, reorder, hbdrop or hbgarble)", part, op)
			}
			p.Wire = append(p.Wire, WireEvent{Op: wop, Round: round, Worker: worker})
		case "disk":
			dop, ok := diskOps[op]
			if !ok {
				return nil, fmt.Errorf("chaos: spec %q: unknown disk op %q (want torn, enospc, fsyncerr, renamecrash or manifesttorn)", part, op)
			}
			// Disk rounds key on Persist barriers, which include the round-0
			// baseline — so round 0 is legal here, unlike proc events.
			p.Disk = append(p.Disk, DiskEvent{Op: dop, Round: round, Worker: worker})
		case "proc":
			pop, ok := procOps[op]
			if !ok {
				return nil, fmt.Errorf("chaos: spec %q: unknown proc op %q (want kill or flap)", part, op)
			}
			if round < 1 {
				return nil, fmt.Errorf("chaos: spec %q: proc round must be >= 1", part)
			}
			p.Proc = append(p.Proc, ProcEvent{Op: pop, Round: round, Worker: worker})
		default:
			return nil, fmt.Errorf("chaos: spec %q: unknown layer %q (want wire, disk or proc; simulated model faults go to -faults)", part, layer)
		}
	}
	if !p.Enabled() {
		return nil, nil
	}
	return p, nil
}

// parseRoundWorker parses the "R:W" tail shared by every event. Disk events
// allow round 0 (the Persist baseline); wire heartbeat ordinals are 1-based
// but share the >= 0 floor here, with op-specific floors checked by callers.
func parseRoundWorker(part, tail string) (round, worker int, err error) {
	rw := strings.SplitN(tail, ":", 2)
	if len(rw) != 2 {
		return 0, 0, fmt.Errorf("chaos: spec %q: want OP@ROUND:WORKER", part)
	}
	round, err = strconv.Atoi(rw[0])
	if err != nil {
		return 0, 0, fmt.Errorf("chaos: spec %q: bad round: %v", part, err)
	}
	worker, err = strconv.Atoi(rw[1])
	if err != nil {
		return 0, 0, fmt.Errorf("chaos: spec %q: bad worker: %v", part, err)
	}
	if round < 0 || worker < 0 {
		return 0, 0, fmt.Errorf("chaos: spec %q: round and worker must be >= 0", part)
	}
	return round, worker, nil
}

// ValidateWorkers rejects plans targeting workers outside [0, workers).
func (p *Plan) ValidateWorkers(workers int) error {
	if p == nil {
		return nil
	}
	if maxW := p.MaxWorker(); maxW >= workers {
		return fmt.Errorf("chaos: plan targets worker %d but the fleet has %d workers", maxW, workers)
	}
	return nil
}

// splitmix64 is the SplitMix64 finalizer (matching internal/mpc's): the
// full-avalanche mixer behind every seeded choice in this package.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix derives a deterministic 64-bit value from the plan seed and an event
// identity; callers reduce it to offsets or junk bytes.
func (p *Plan) mix(kind, round, worker uint64) uint64 {
	return splitmix64(splitmix64(uint64(p.Seed)) ^ kind<<48 ^ round<<16 ^ worker)
}
