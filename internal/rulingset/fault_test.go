package rulingset

import (
	"errors"
	"reflect"
	"strconv"
	"testing"

	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/mpc"
)

// faultTestPlan is a non-empty recoverable schedule: two pinned crashes early
// in the run (guaranteeing RecoveryRounds > 0 on every algorithm, all of
// which run well past two supersteps) plus seeded drop/dup/stall noise.
func faultTestPlan() *mpc.FaultPlan {
	return &mpc.FaultPlan{
		Seed:      11,
		DropRate:  0.05,
		DupRate:   0.03,
		StallRate: 0.02,
		Crashes:   []mpc.FaultEvent{{Round: 1, Machine: 0}, {Round: 2, Machine: 1}},
	}
}

// TestFaultInvariance is the acceptance criterion of the fault layer: for
// every algorithm, a run under a non-empty recoverable FaultPlan returns the
// bit-identical ruling set of the fault-free run, with recovery recorded.
func TestFaultInvariance(t *testing.T) {
	g := gen.MustBuild("gnp:n=300,p=0.02", 17)
	for _, a := range allAlgorithms() {
		for _, ckpt := range []int{0, 2} {
			a, ckpt := a, ckpt
			name := a.name
			if ckpt > 0 {
				name += "/checkpointed"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				base, err := a.run(g, Options{Seed: 5})
				if err != nil {
					t.Fatal(err)
				}
				faulty, err := a.run(g, Options{Seed: 5, Faults: faultTestPlan(), CheckpointEvery: ckpt})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(base.Members, faulty.Members) {
					t.Fatalf("members diverged under faults:\nbase   %v\nfaulty %v", base.Members, faulty.Members)
				}
				if base.Stats.Rounds != faulty.Stats.Rounds || base.Stats.Words != faulty.Stats.Words {
					t.Fatalf("core stats diverged: base rounds=%d words=%d, faulty rounds=%d words=%d",
						base.Stats.Rounds, base.Stats.Words, faulty.Stats.Rounds, faulty.Stats.Words)
				}
				if faulty.Stats.RecoveryRounds == 0 {
					t.Fatal("no recovery recorded under a plan with pinned crashes")
				}
				if faulty.Stats.RecoveredCrashes < 2 {
					t.Fatalf("RecoveredCrashes = %d, want >= 2", faulty.Stats.RecoveredCrashes)
				}
				if base.Stats.RecoveryRounds != 0 || base.Stats.RecoveredCrashes != 0 {
					t.Fatalf("fault-free run recorded recovery: %+v", base.Stats)
				}
				if ckpt > 0 && faulty.Stats.CheckpointWords == 0 {
					t.Fatal("checkpointing enabled but no checkpoint words charged")
				}
			})
		}
	}
}

// TestCliqueFaultInvariance mirrors TestFaultInvariance for the congested
// clique implementations.
func TestCliqueFaultInvariance(t *testing.T) {
	g := gen.MustBuild("gnp:n=150,p=0.04", 23)
	for _, tc := range []struct {
		name string
		run  func(*graph.Graph, Options) (CliqueResult, error)
	}{
		{"CliqueRandRuling2", CliqueRandRuling2},
		{"CliqueDetRuling2", CliqueDetRuling2},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			base, err := tc.run(g, Options{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			faulty, err := tc.run(g, Options{Seed: 5, Faults: faultTestPlan()})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base.Members, faulty.Members) {
				t.Fatalf("members diverged under faults:\nbase   %v\nfaulty %v", base.Members, faulty.Members)
			}
			if base.Stats.Rounds != faulty.Stats.Rounds || base.Stats.Words != faulty.Stats.Words {
				t.Fatalf("core stats diverged: base %+v faulty %+v", base.Stats, faulty.Stats)
			}
			if faulty.Stats.RecoveryRounds == 0 || faulty.Stats.RecoveredCrashes < 2 {
				t.Fatalf("no recovery recorded: %+v", faulty.Stats)
			}
		})
	}
}

// TestFaultPanicSurfaces verifies the driver-visible failure mode: a panic in
// machine code surfaces as a *MachineError through the algorithm's error
// return, and the process survives.
func TestFaultPanicSurfaces(t *testing.T) {
	c, err := mpc.NewCluster(mpc.Config{Machines: 4}, 16)
	if err != nil {
		t.Fatal(err)
	}
	stepErr := c.Step("boom", func(x *mpc.Ctx) {
		if x.Machine == 1 {
			panic("bug in machine code")
		}
	})
	var me *mpc.MachineError
	if !errors.As(stepErr, &me) || me.Machine != 1 {
		t.Fatalf("err = %v, want MachineError{Machine: 1}", stepErr)
	}
}

// FuzzFaultDeterminism asserts the reproducibility contract: two runs with
// identical (graph, Options, FaultPlan) produce identical members, rounds
// and violation logs — and the members match the fault-free run's.
func FuzzFaultDeterminism(f *testing.F) {
	f.Add(int64(1), uint8(40), float64(0.05), float64(0.04), uint8(1), uint8(0))
	f.Add(int64(7), uint8(80), float64(0.3), float64(0.0), uint8(2), uint8(2))
	f.Add(int64(42), uint8(15), float64(0.0), float64(0.5), uint8(0), uint8(3))
	f.Add(int64(-3), uint8(60), float64(1.0), float64(1.0), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, crashRate, dropRate float64, algoPick, ckptRaw uint8) {
		if crashRate < 0 || crashRate > 1 || dropRate < 0 || dropRate > 1 {
			t.Skip()
		}
		n := int(nRaw)%60 + 2
		g := gen.MustBuild("gnp:n="+strconv.Itoa(n)+",p=0.1", seed)
		plan := &mpc.FaultPlan{
			Seed:      seed,
			CrashRate: crashRate / 4, // keep retry loops short
			DropRate:  dropRate,
			Crashes:   []mpc.FaultEvent{{Round: 1, Machine: 0}},
		}
		algos := allAlgorithms()
		a := algos[int(algoPick)%len(algos)]
		opts := Options{Seed: seed, Machines: 4, Faults: plan, CheckpointEvery: int(ckptRaw) % 4}

		r1, err1 := a.run(g, opts)
		r2, err2 := a.run(g, opts)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("determinism broken in error path: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("errors differ: %v vs %v", err1, err2)
			}
			return
		}
		if !reflect.DeepEqual(r1.Members, r2.Members) {
			t.Fatalf("members differ between identical runs: %v vs %v", r1.Members, r2.Members)
		}
		if r1.Stats.Rounds != r2.Stats.Rounds {
			t.Fatalf("rounds differ: %d vs %d", r1.Stats.Rounds, r2.Stats.Rounds)
		}
		if !reflect.DeepEqual(r1.Stats.Violations, r2.Stats.Violations) {
			t.Fatalf("violation logs differ: %v vs %v", r1.Stats.Violations, r2.Stats.Violations)
		}
		if r1.Stats.RecoveredCrashes != r2.Stats.RecoveredCrashes ||
			r1.Stats.RecoveryRounds != r2.Stats.RecoveryRounds ||
			r1.Stats.ReplayedWords != r2.Stats.ReplayedWords {
			t.Fatalf("recovery accounting differs: %+v vs %+v", r1.Stats, r2.Stats)
		}

		// And the faulty output is the fault-free output.
		clean, err := a.run(g, Options{Seed: seed, Machines: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(clean.Members, r1.Members) {
			t.Fatalf("faulty members diverge from fault-free: %v vs %v", r1.Members, clean.Members)
		}
	})
}
