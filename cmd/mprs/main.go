// Command mprs runs ruling-set algorithms on generated or loaded graphs
// inside the MPC simulator and reports the model measurements.
//
// Usage:
//
//	mprs gen  -spec gnp:n=4096,p=0.004 -seed 1 -o graph.txt [-binary]
//	mprs info -spec ... | -in graph.txt
//	mprs run  -algo det2 -spec gnp:n=4096,p=0.004 [-machines 8] [-regime linear]
//	          [-epsilon 0.5] [-memory words] [-slack 16] [-chunk 8] [-algo-seed 1]
//	          [-beta 3] [-alpha 3] [-strict] [-verify]
//	          [-phases]          print the per-phase trace table
//	          [-rounds]          print the per-round communication log
//	          [-spans]           print the per-span (algorithm phase) skew table
//	          [-trace file.jsonl] write the superstep trace as JSONL (with run header)
//	          [-profile prefix]  capture CPU/heap profiles
//	          [-debug-addr host:port] serve live run state (expvar + pprof) over HTTP
//	          [-faults crash=0.02,drop=0.01,crash@3:1] [-fault-seed 1] [-checkpoint-every 4]
//	mprs -version
//
// Algorithms: luby, detluby, rand2, det2, randbeta, detbeta, randab, detab,
// clique2, cliquedet2 (congested clique), greedy.
//
// -slack widens the linear-regime budget to S = slack·n words per machine
// (0 = the simulator default of 4·n); the beta/alpha-beta algorithms at small
// quick-tier sizes typically need -slack 16.
//
// Diagnostics (budget violations, errors) go to stderr with a non-zero exit;
// tables and results go to stdout.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rulingset/mprs/internal/buildinfo"
	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/rulingset"
	"github.com/rulingset/mprs/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mprs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mprs <gen|info|run> [flags] (or -version); see -h of each subcommand")
	}
	switch args[0] {
	case "-version", "--version", "version":
		fmt.Println(buildinfo.CLIVersion("mprs"))
		return nil
	case "gen":
		return cmdGen(args[1:])
	case "info":
		return cmdInfo(args[1:])
	case "run":
		return cmdRun(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, info or run)", args[0])
	}
}

// graphSource carries the shared -spec/-in/-seed flags.
type graphSource struct {
	spec, in *string
	seed     *int64
}

// graphFlags adds the shared -spec/-in/-seed flags.
func graphFlags(fs *flag.FlagSet) graphSource {
	return graphSource{
		spec: fs.String("spec", "", "workload spec, e.g. gnp:n=4096,p=0.004"),
		in:   fs.String("in", "", "read graph from an edge-list file instead"),
		seed: fs.Int64("seed", 1, "generator seed"),
	}
}

// describe renders the input source for trace headers and table titles.
func (s graphSource) describe() string {
	if *s.spec != "" {
		return *s.spec
	}
	return "file:" + *s.in
}

func (s graphSource) load() (*graph.Graph, error) {
	switch {
	case *s.spec != "" && *s.in != "":
		return nil, fmt.Errorf("-spec and -in are mutually exclusive")
	case *s.spec != "":
		sp, err := gen.ParseSpec(*s.spec)
		if err != nil {
			return nil, err
		}
		return sp.Build(*s.seed)
	case *s.in != "":
		f, err := os.Open(*s.in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	default:
		return nil, fmt.Errorf("one of -spec or -in is required")
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	src := graphFlags(fs)
	out := fs.String("o", "", "output file (default stdout)")
	binary := fs.Bool("binary", false, "write the compact binary format instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := src.load()
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *binary {
		return g.WriteBinary(w)
	}
	return g.WriteEdgeList(w)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	src := graphFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := src.load()
	if err != nil {
		return err
	}
	_, comps := g.ConnectedComponents()
	tb := metrics.NewTable("graph", "n", "m", "Δ", "avg deg", "components")
	tb.AddRow(g.N(), g.M(), g.MaxDegree(), g.AvgDegree(), comps)
	return tb.Render(os.Stdout)
}

func cmdRun(args []string) (retErr error) {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	src := graphFlags(fs)
	var (
		algo     = fs.String("algo", "det2", "luby|detluby|rand2|det2|randbeta|detbeta|randab|detab|clique2|cliquedet2|greedy")
		machines = fs.Int("machines", 8, "simulated machine count")
		regime   = fs.String("regime", "linear", "memory regime: linear|sublinear|explicit")
		epsilon  = fs.Float64("epsilon", 0.5, "sublinear memory exponent")
		memory   = fs.Int("memory", 0, "explicit per-machine budget in words")
		slack    = fs.Int("slack", 0, "linear-regime budget multiplier S = slack·n (0 = default 4)")
		chunk    = fs.Int("chunk", 8, "derandomizer chunk width z")
		algoSeed = fs.Int64("algo-seed", 1, "seed for randomized algorithms")
		beta     = fs.Int("beta", 3, "beta for randbeta/detbeta/randab/detab")
		alpha    = fs.Int("alpha", 3, "alpha for randab/detab")
		strict   = fs.Bool("strict", false, "fail on budget violations")
		phases   = fs.Bool("phases", false, "print the per-phase trace")
		rounds   = fs.Bool("rounds", false, "print the per-round communication log")
		spans    = fs.Bool("spans", false, "print the per-span (algorithm phase) skew table")
		verify   = fs.Bool("verify", true, "verify independence and radius")

		traceFile = fs.String("trace", "", "write a deterministic JSONL superstep trace to this file")
		profile   = fs.String("profile", "", "capture CPU and heap profiles to <prefix>.cpu.pprof / <prefix>.heap.pprof")
		debugAddr = fs.String("debug-addr", "", "serve live run state (expvar mprs var, net/http/pprof) on this host:port")

		faults = fs.String("faults", "", "fault spec, e.g. crash=0.02,drop=0.01,dup=0.005,stall=0.05,crash@3:1 (empty = off)")
		fseed  = fs.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
		ckpt   = fs.Int("checkpoint-every", 0, "snapshot driver state every k supersteps for crash recovery (0 = barrier recovery)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := src.load()
	if err != nil {
		return err
	}
	plan, err := mpc.ParseFaultPlan(*faults, *fseed)
	if err != nil {
		return err
	}
	opts := rulingset.Options{
		Machines:        *machines,
		Epsilon:         *epsilon,
		MemoryWords:     *memory,
		LinearSlack:     *slack,
		ChunkBits:       *chunk,
		Seed:            *algoSeed,
		Strict:          *strict,
		Faults:          plan,
		CheckpointEvery: *ckpt,
	}
	switch *regime {
	case "linear":
		opts.Regime = mpc.RegimeLinear
	case "sublinear":
		opts.Regime = mpc.RegimeSublinear
	case "explicit":
		opts.Regime = mpc.RegimeExplicit
	default:
		return fmt.Errorf("unknown regime %q", *regime)
	}

	// Compose the tracer: an optional JSONL file sink plus an optional live
	// view for the debug endpoint. Both observe the same committed supersteps.
	var sinks trace.Multi
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		tr := trace.NewJSONL(f)
		machines := *machines
		if *algo == "clique2" || *algo == "cliquedet2" {
			machines = g.N() // the clique simulates one machine per vertex
		}
		if err := tr.WriteHeader(trace.Header{
			Algo:     *algo,
			Spec:     src.describe(),
			Seed:     *algoSeed,
			Machines: machines,
			Build:    buildStamp(),
		}); err != nil {
			f.Close()
			return fmt.Errorf("trace %s: %w", *traceFile, err)
		}
		sinks = append(sinks, tr)
		defer func() {
			if err := tr.Close(); err != nil && retErr == nil {
				retErr = fmt.Errorf("trace %s: %w", *traceFile, err)
			}
		}()
	}
	if *debugAddr != "" {
		live := trace.NewLive()
		sinks = append(sinks, live)
		ln, err := startDebugServer(*debugAddr, live)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars (pprof under /debug/pprof/)\n", ln.Addr())
	}
	if len(sinks) > 0 {
		opts.Tracer = sinks
	}
	if *profile != "" {
		stop, err := startProfiles(*profile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}

	if *algo == "greedy" {
		start := time.Now()
		mis := rulingset.GreedyMIS(g)
		fmt.Printf("greedy MIS: %d members in %v\n", len(mis), time.Since(start))
		return nil
	}
	if *algo == "clique2" || *algo == "cliquedet2" {
		return runClique(g, *algo, opts, *verify, *spans)
	}

	start := time.Now()
	var res rulingset.Result
	switch *algo {
	case "luby":
		res, err = rulingset.LubyMIS(g, opts)
	case "detluby":
		res, err = rulingset.DetLubyMIS(g, opts)
	case "rand2":
		res, err = rulingset.RandRuling2(g, opts)
	case "det2":
		res, err = rulingset.DetRuling2(g, opts)
	case "randbeta":
		res, err = rulingset.RandRulingBeta(g, *beta, opts)
	case "detbeta":
		res, err = rulingset.DetRulingBeta(g, *beta, opts)
	case "randab":
		res, err = rulingset.RandRulingAlphaBeta(g, *alpha, *beta, opts)
	case "detab":
		res, err = rulingset.DetRulingAlphaBeta(g, *alpha, *beta, opts)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	wall := time.Since(start)

	tb := metrics.NewTable(fmt.Sprintf("%s on %v (%d machines, %s regime)", *algo, g, *machines, *regime),
		"members", "beta", "rounds", "messages", "words", "peak sent", "peak recv", "peak resident",
		"skew sent", "gini sent", "violations", "wall")
	tb.AddRow(len(res.Members), res.Beta, res.Stats.Rounds, res.Stats.Messages, res.Stats.Words,
		res.Stats.PeakSent, res.Stats.PeakRecv, res.Stats.PeakResident,
		res.Stats.SkewSent, res.Stats.GiniSent, len(res.Stats.Violations), wall.String())
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}

	if *phases && len(res.Phases) > 0 {
		pt := metrics.NewTable("phase trace", "phase", "j", "active before", "active after",
			"highdeg", "marked", "cand edges", "seed steps", "E[Φ] init", "Φ final")
		for _, ps := range res.Phases {
			pt.AddRow(ps.Phase, ps.J, ps.ActiveBefore, ps.ActiveAfter, ps.HighDegBefore,
				ps.Marked, ps.CandidateEdges, ps.SeedSteps, ps.EstimatorInitial, ps.EstimatorFinal)
		}
		fmt.Println()
		if err := pt.Render(os.Stdout); err != nil {
			return err
		}
	}
	if *rounds && len(res.Stats.Log) > 0 {
		rt := metrics.NewTable("round log", "round", "step", "span", "messages", "words", "max sent", "max recv", "gini sent")
		for i, info := range res.Stats.Log {
			rt.AddRow(i+1, info.Name, info.Span, info.Messages, info.Words, info.MaxSent, info.MaxRecv, info.GiniSent)
		}
		fmt.Println()
		if err := rt.Render(os.Stdout); err != nil {
			return err
		}
	}
	if *spans && len(res.Stats.Spans) > 0 {
		if err := renderSpans(res.Stats.Spans); err != nil {
			return err
		}
	}
	if *verify {
		if err := rulingset.Check(g, res); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Printf("verified: independent, radius <= %d\n", res.Beta)
	}
	if opts.Faults.Enabled() {
		ft := metrics.NewTable(fmt.Sprintf("recovery under %s", opts.Faults),
			"recovered crashes", "recovery rounds", "replayed words", "checkpoint words", "dropped", "duplicated", "stall rounds")
		ft.AddRow(res.Stats.RecoveredCrashes, res.Stats.RecoveryRounds, res.Stats.ReplayedWords,
			res.Stats.CheckpointWords, res.Stats.DroppedMessages, res.Stats.DupMessages, res.Stats.StallRounds)
		fmt.Println()
		if err := ft.Render(os.Stdout); err != nil {
			return err
		}
	}
	if n := len(res.Stats.Violations); n > 0 {
		for _, v := range res.Stats.Violations {
			fmt.Fprintf(os.Stderr, "budget violation: %s\n", v)
		}
		return fmt.Errorf("%d budget violation(s); first: %s", n, res.Stats.Violations[0])
	}
	return nil
}

// renderSpans prints the per-span (algorithm phase) aggregate table.
func renderSpans(spans []mpc.SpanStat) error {
	st := metrics.NewTable("span skew", "span", "rounds", "messages", "words", "max sent", "max recv", "gini sent", "gini recv")
	for _, sp := range spans {
		st.AddRow(sp.Span, sp.Rounds, sp.Messages, sp.Words, sp.MaxSent, sp.MaxRecv, sp.GiniSent, sp.GiniRecv)
	}
	fmt.Println()
	return st.Render(os.Stdout)
}

// buildStamp renders the binary's build info for trace headers. The stamp is
// a pure function of the binary, so it never breaks trace byte-determinism
// across runs of the same build.
func buildStamp() json.RawMessage {
	data, err := json.Marshal(buildinfo.Get())
	if err != nil {
		return nil
	}
	return data
}

// liveState is the expvar indirection: expvar.Publish panics on duplicate
// names, so the published Func closes over an atomic pointer that each run
// (re)points at its live view. Tests exercising multiple runs in one process
// stay safe.
var (
	liveState   atomic.Pointer[trace.Live]
	publishOnce sync.Once
)

// startDebugServer exposes the live run state over HTTP: expvar (including
// the "mprs" variable with the tracer's current round/span/counters) under
// /debug/vars and net/http/pprof under /debug/pprof/. It returns the bound
// listener so callers can report the address (and tests can use port 0).
func startDebugServer(addr string, live *trace.Live) (net.Listener, error) {
	liveState.Store(live)
	publishOnce.Do(func() {
		expvar.Publish("mprs", expvar.Func(func() any {
			if l := liveState.Load(); l != nil {
				return l.Snapshot()
			}
			return nil
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// expvar and net/http/pprof register their handlers on the default mux.
	go http.Serve(ln, nil) //nolint — lifetime is the process; Close unblocks it
	return ln, nil
}

// startProfiles begins a CPU profile and returns a stop function that also
// captures a heap profile — the CLI's file-based -profile capture.
func startProfiles(prefix string) (func() error, error) {
	cf, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		cf.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cf.Close(); err != nil {
			return err
		}
		hf, err := os.Create(prefix + ".heap.pprof")
		if err != nil {
			return err
		}
		if err := pprof.WriteHeapProfile(hf); err != nil {
			hf.Close()
			return err
		}
		return hf.Close()
	}, nil
}

// runClique executes the congested-clique algorithms, which carry their own
// model statistics.
func runClique(g *graph.Graph, algo string, opts rulingset.Options, verify, spans bool) error {
	start := time.Now()
	var (
		res rulingset.CliqueResult
		err error
	)
	if algo == "clique2" {
		res, err = rulingset.CliqueRandRuling2(g, opts)
	} else {
		res, err = rulingset.CliqueDetRuling2(g, opts)
	}
	if err != nil {
		return err
	}
	wall := time.Since(start)
	tb := metrics.NewTable(fmt.Sprintf("%s on %v (congested clique, %d nodes)", algo, g, g.N()),
		"members", "beta", "rounds", "messages", "words", "peak recv", "skew sent", "gini sent", "violations", "wall")
	tb.AddRow(len(res.Members), res.Beta, res.Stats.Rounds, res.Stats.Messages,
		res.Stats.Words, res.Stats.PeakRecv, res.Stats.SkewSent, res.Stats.GiniSent,
		len(res.Stats.Violations), wall.String())
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	if spans && len(res.Stats.Spans) > 0 {
		if err := renderSpans(res.Stats.Spans); err != nil {
			return err
		}
	}
	if verify {
		if !rulingset.IsRulingSet(g, res.Members, res.Beta) {
			return fmt.Errorf("verification failed")
		}
		fmt.Printf("verified: independent, radius <= %d\n", res.Beta)
	}
	if opts.Faults.Enabled() {
		ft := metrics.NewTable(fmt.Sprintf("recovery under %s", opts.Faults),
			"recovered crashes", "recovery rounds", "replayed words", "dropped", "duplicated", "stall rounds")
		ft.AddRow(res.Stats.RecoveredCrashes, res.Stats.RecoveryRounds, res.Stats.ReplayedWords,
			res.Stats.DroppedMessages, res.Stats.DupMessages, res.Stats.StallRounds)
		fmt.Println()
		if err := ft.Render(os.Stdout); err != nil {
			return err
		}
	}
	if n := len(res.Stats.Violations); n > 0 {
		for _, v := range res.Stats.Violations {
			fmt.Fprintf(os.Stderr, "budget violation: %s\n", v)
		}
		return fmt.Errorf("%d budget violation(s); first: %s", n, res.Stats.Violations[0])
	}
	return nil
}
