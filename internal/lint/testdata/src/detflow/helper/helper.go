// Package helper plays the role of a non-critical utility package
// (internal/metrics, internal/gen, …): none of the critical-only analyzers
// ever look at it, so nondeterminism produced here is invisible until it
// crosses a package boundary into a deterministic sink — exactly the flow
// the detflow engine exists to catch.
package helper

import (
	"math/rand"
	"os"
	"time"
)

// Stamp returns a wall-clock-derived word: tainted.
func Stamp() uint64 {
	return uint64(time.Now().UnixNano())
}

// Pid returns the process id: tainted.
func Pid() uint64 {
	return uint64(os.Getpid())
}

// Draw samples the global math/rand source: tainted.
func Draw() uint64 {
	return uint64(rand.Intn(1 << 20))
}

// UnsortedKeys collects map keys in range order: order-tainted.
func UnsortedKeys(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SeededDraw threads an explicitly seeded generator: clean.
func SeededDraw(seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Uint64()
}

// Relay returns its argument unchanged: taint passes through the summary's
// parameter flow, not from an intrinsic source.
func Relay(v uint64) uint64 {
	return v
}
