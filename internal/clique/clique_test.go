package clique

import (
	"errors"
	"testing"
)

func newTestClique(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{}, n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{}, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewCluster(Config{PairWords: -1}, 4); err == nil {
		t.Error("negative bandwidth accepted")
	}
	c, err := NewCluster(Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().PairWords != 1 {
		t.Errorf("default pair bandwidth = %d", c.Config().PairWords)
	}
}

func TestStepDeliveryAndOrdering(t *testing.T) {
	c := newTestClique(t, 5)
	if err := c.Step("ring", func(x *Ctx) {
		x.Send((x.Node+1)%5, uint64(x.Node))
	}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		msgs := c.Drain(v)
		if len(msgs) != 1 {
			t.Fatalf("node %d received %d messages", v, len(msgs))
		}
		want := (v + 4) % 5
		if msgs[0].Src != want || msgs[0].Payload[0] != uint64(want) {
			t.Fatalf("node %d got %+v", v, msgs[0])
		}
	}
	if c.Stats().Rounds != 1 || c.Stats().Messages != 5 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestInboxSortedBySender(t *testing.T) {
	c := newTestClique(t, 8)
	if err := c.Step("fanin", func(x *Ctx) {
		if x.Node != 0 {
			x.Send(0, uint64(x.Node))
		}
	}); err != nil {
		t.Fatal(err)
	}
	msgs := c.Drain(0)
	if len(msgs) != 7 {
		t.Fatalf("received %d", len(msgs))
	}
	for i, msg := range msgs {
		if msg.Src != i+1 {
			t.Fatalf("inbox[%d].Src = %d", i, msg.Src)
		}
	}
}

func TestPairBandwidthViolation(t *testing.T) {
	c := newTestClique(t, 3)
	if err := c.Step("burst", func(x *Ctx) {
		if x.Node == 0 {
			x.Send(1, 7, 8) // two words on one pair link
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if len(st.Violations) != 1 || st.Violations[0].Kind != "pair" {
		t.Fatalf("violations = %v", st.Violations)
	}
	// Fan-in of one word per pair is legal (the clique's defining power).
	c2 := newTestClique(t, 64)
	if err := c2.Step("fanin", func(x *Ctx) {
		x.Send(0, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if len(c2.Stats().Violations) != 0 {
		t.Fatalf("legal fan-in flagged: %v", c2.Stats().Violations)
	}
}

func TestStrictMode(t *testing.T) {
	c, err := NewCluster(Config{Strict: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Step("burst", func(x *Ctx) {
		if x.Node == 0 {
			x.Send(1, 1, 2)
		}
	})
	if !errors.Is(err, ErrBandwidth) {
		t.Fatalf("err = %v", err)
	}
}

func TestRouteStepBudgets(t *testing.T) {
	const n = 6
	c := newTestClique(t, n)
	// A many-words-to-one pattern within Lenzen budgets: node 1 sends n
	// words to node 0.
	if err := c.RouteStep("route", func(x *Ctx) {
		if x.Node == 1 {
			for i := 0; i < n; i++ {
				x.Send(0, uint64(i))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Rounds != LenzenRounds {
		t.Fatalf("routed step charged %d rounds, want %d", st.Rounds, LenzenRounds)
	}
	if len(st.Violations) != 0 {
		t.Fatalf("legal routing flagged: %v", st.Violations)
	}
	// Exceeding the per-node budget must be flagged.
	c2 := newTestClique(t, 3)
	if err := c2.RouteStep("overflow", func(x *Ctx) {
		if x.Node == 1 {
			for i := 0; i < 10; i++ { // 10 > n·PairWords = 3
				x.Send(0, uint64(i))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(c2.Stats().Violations) == 0 {
		t.Fatal("routing overflow not flagged")
	}
}

func TestSumAndMaxToZero(t *testing.T) {
	c := newTestClique(t, 10)
	sum, err := c.SumToZero("s", func(v int) uint64 { return uint64(v) })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Fatalf("sum = %d", sum)
	}
	best, err := c.MaxToZero("m", func(v int) uint64 { return uint64(v * 3) })
	if err != nil {
		t.Fatal(err)
	}
	if best != 27 {
		t.Fatalf("max = %d", best)
	}
	if c.Stats().Rounds != 2 {
		t.Fatalf("rounds = %d", c.Stats().Rounds)
	}
}

func TestBroadcastWord(t *testing.T) {
	c := newTestClique(t, 6)
	if err := c.BroadcastWord("b", 42); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Rounds != 1 || st.Words != 5 || len(st.Violations) != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScatterAggregate(t *testing.T) {
	const n, nExt = 12, 8
	c := newTestClique(t, n)
	sums, err := c.ScatterAggregate("sa", nExt, func(v, e int) uint64 {
		return uint64(v * e)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Σ_v v·e = e·n(n-1)/2.
	for e := 0; e < nExt; e++ {
		want := uint64(e * n * (n - 1) / 2)
		if sums[e] != want {
			t.Fatalf("sums[%d] = %d, want %d", e, sums[e], want)
		}
	}
	st := c.Stats()
	if st.Rounds != 2 {
		t.Fatalf("scatter-aggregate cost %d rounds, want 2 (O(1) regardless of width)", st.Rounds)
	}
	if len(st.Violations) != 0 {
		t.Fatalf("violations: %v", st.Violations)
	}
	if _, err := c.ScatterAggregate("too-wide", n+1, func(v, e int) uint64 { return 0 }); err == nil {
		t.Fatal("over-capacity scatter accepted")
	}
}

func TestScatterAggregateFloat(t *testing.T) {
	const n, nExt = 9, 4
	c := newTestClique(t, n)
	sums, err := c.ScatterAggregateFloat("sa", nExt, func(v, e int) float64 {
		return 0.5 * float64(e)
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < nExt; e++ {
		want := 0.5 * float64(e) * float64(n)
		if sums[e] != want {
			t.Fatalf("sums[%d] = %v, want %v", e, sums[e], want)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		c := newTestClique(t, 16)
		if err := c.Step("all-to-all", func(x *Ctx) {
			for d := 0; d < 16; d++ {
				if d != x.Node {
					x.Send(d, uint64(x.Node*100+d))
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		var out []uint64
		for v := 0; v < 16; v++ {
			for _, msg := range c.Drain(v) {
				out = append(out, msg.Payload...)
			}
		}
		return out
	}
	want := run()
	for i := 0; i < 10; i++ {
		got := run()
		for k := range want {
			if got[k] != want[k] {
				t.Fatal("nondeterministic delivery")
			}
		}
	}
}

func TestChargeRounds(t *testing.T) {
	c := newTestClique(t, 2)
	c.ChargeRounds(5)
	if c.Stats().Rounds != 5 {
		t.Fatalf("rounds = %d", c.Stats().Rounds)
	}
}
