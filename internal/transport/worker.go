package transport

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/rulingset/mprs/internal/mpc"
)

// ErrStopped is wrapped by the exchange error returned after the supervisor
// ordered this worker to stop: the run aborts barrier-clean at the next
// exchange, and the resulting *mpc.TransportError carries the committed
// round and full Stats for the supervisor to harvest.
var ErrStopped = errors.New("transport: stopped by supervisor")

// maxStashAhead bounds how far beyond the current round a peer frame may be
// stashed. The barrier lockstep keeps honest peers within one round of each
// other; a supervisor restart can re-deliver the retained frame of the round
// after the join round; and a reordering link can put a round r+1 frame ahead
// of round r. All of those fit within two rounds of lookahead, so anything
// further is treated as stream corruption rather than buffered — the stash
// must stay bounded even against a peer with a garbage round counter.
const maxStashAhead = 2

// OwnerOf maps machine id m to its owning worker: contiguous balanced blocks
// over total machines, the first total%workers workers owning one extra. The
// balanced split guarantees every worker owns at least one machine whenever
// workers <= total (a ceil-division split can leave trailing workers empty).
// Every worker and the supervisor compute the identical partition from
// (total, workers) alone.
func OwnerOf(m, total, workers int) int {
	if workers <= 1 {
		return 0
	}
	q, r := total/workers, total%workers
	if m < r*(q+1) {
		return m / (q + 1)
	}
	return r + (m-r*(q+1))/q
}

// Worker is the worker-process side of the multi-process backend: an
// mpc.Transport that, at every exchanged superstep, ships the messages sent
// by this worker's owned machine block and verifies every peer's
// authoritative frame against the local replica before delivering.
//
// Rounds at or below the join round exchange locally (identity): a restarted
// worker deterministically replays the committed prefix the surviving
// workers have already exchanged, and rejoins the wire at the first round
// the group has not completed. For a fresh start the join round is 0.
type Worker struct {
	conn      *Conn
	id        int
	workers   int
	total     int
	joinAfter int

	// lastRound is the newest round handed to Exchange, read by the
	// heartbeat ticker goroutine.
	lastRound atomic.Int64

	// pending stashes peer frames by round. A peer that already holds this
	// worker's round-r frame can complete r and send r+1 while this worker
	// is still collecting r, so frames one exchange ahead are normal; the
	// barrier lockstep bounds the stash at two live rounds.
	pending map[int]map[int][]byte
}

// NewWorker builds the transport for worker id of workers, owning its block
// of the total machines, exchanging locally through round joinAfter.
func NewWorker(conn *Conn, id, workers, total, joinAfter int) (*Worker, error) {
	if workers < 1 || id < 0 || id >= workers {
		return nil, fmt.Errorf("transport: worker %d of %d out of range", id, workers)
	}
	if total < 1 {
		return nil, fmt.Errorf("transport: %d machines < 1", total)
	}
	return &Worker{
		conn:      conn,
		id:        id,
		workers:   workers,
		total:     total,
		joinAfter: joinAfter,
		pending:   make(map[int]map[int][]byte),
	}, nil
}

// LastRound reports the newest round handed to Exchange — the progress value
// heartbeats carry. Safe for concurrent use.
func (w *Worker) LastRound() int { return int(w.lastRound.Load()) }

// owns reports whether this worker owns machine src.
func (w *Worker) owns(src int) bool { return OwnerOf(src, w.total, w.workers) == w.id }

// Exchange implements mpc.Transport: ship owned messages, collect every
// peer's frame for the round, verify each against the local replica, and
// deliver the (verified-identical) local boxes.
func (w *Worker) Exchange(round int, boxes [][]mpc.Message) ([][]mpc.Message, error) {
	w.lastRound.Store(int64(round))
	if round <= w.joinAfter {
		// Replayed prefix: the group already exchanged this round; the
		// local replica is authoritative by deterministic replay.
		return boxes, nil
	}
	if err := w.conn.Write(Frame{Type: FrameMessages, Worker: w.id, Round: round, Payload: encodeOwned(boxes, w.owns)}); err != nil {
		return nil, err
	}
	//detlint:ok maporder -- order-independent: deletes every key below round, no output depends on visit order
	for r := range w.pending {
		if r < round {
			delete(w.pending, r) // completed exchanges; nothing rereads them
		}
	}
	got := w.pending[round]
	if got == nil {
		got = make(map[int][]byte, w.workers)
		w.pending[round] = got
	}
	for len(got) < w.workers-1 {
		f, err := w.conn.Read()
		if err != nil {
			return nil, fmt.Errorf("transport: worker %d waiting on round %d: %w", w.id, round, err)
		}
		switch f.Type {
		case FrameStop:
			return nil, fmt.Errorf("%w (worker %d at round %d)", ErrStopped, w.id, round)
		case FrameMessages:
			if f.Worker == w.id {
				return nil, fmt.Errorf("transport: worker %d received its own frame for round %d", w.id, f.Round)
			}
			if f.Worker < 0 || f.Worker >= w.workers {
				return nil, fmt.Errorf("transport: frame from unknown worker %d", f.Worker)
			}
			if f.Round < round {
				continue // stale re-delivery from a supervisor restart; already replayed locally
			}
			if f.Round > round+maxStashAhead {
				// The barrier lockstep bounds legitimate lookahead (see
				// maxStashAhead); anything further is a corrupt or hostile
				// round counter, and stashing it would let a single bad
				// frame grow the pending map without limit.
				return nil, fmt.Errorf("%w: worker %d at round %d received frame for round %d, beyond lookahead %d",
					ErrFraming, w.id, round, f.Round, maxStashAhead)
			}
			stash := got
			if f.Round > round {
				stash = w.pending[f.Round]
				if stash == nil {
					stash = make(map[int][]byte, w.workers)
					w.pending[f.Round] = stash
				}
			}
			stash[f.Worker] = f.Payload
		default:
			return nil, fmt.Errorf("transport: worker %d: unexpected frame type %d", w.id, f.Type)
		}
	}
	// Verify every peer's authoritative frame word-for-word against the
	// local replica, in worker order so a multi-peer divergence reports
	// deterministically.
	for p := 0; p < w.workers; p++ {
		if p == w.id {
			continue
		}
		peerOwns := func(src int) bool { return OwnerOf(src, w.total, w.workers) == p }
		if err := verifyOwned(boxes, peerOwns, got[p]); err != nil {
			return nil, fmt.Errorf("round %d, worker %d vs peer %d: %w", round, w.id, p, err)
		}
	}
	delete(w.pending, round)
	return boxes, nil
}
