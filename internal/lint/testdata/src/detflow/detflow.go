// Package detflow is the negative fixture for the interprocedural taint
// engine: nondeterminism minted in the sibling helper package (standing in
// for a non-critical utility package) crosses the package boundary through
// return values and parameters and lands in deterministic sinks. None of
// the intra-procedural analyzers can see these flows — the sources are in
// another package — so every finding here is detflow's alone.
package detflow

import (
	"sort"

	"github.com/rulingset/mprs/internal/lint/testdata/src/detflow/helper"
)

// Ctx mimics the simulator context; Send is a deterministic sink by the
// critical-package API contract.
type Ctx struct{ out []uint64 }

// Send appends to the message payload stream.
func (x *Ctx) Send(dst int, payload ...uint64) {
	_ = dst
	x.out = append(x.out, payload...)
}

// Stats mimics the simulator's deterministic columns.
type Stats struct {
	Rounds int
	Words  uint64
}

// crossPackageClock: a wall-clock stamp crosses the package boundary
// through a return value into a Send payload.
func crossPackageClock(x *Ctx) {
	stamp := helper.Stamp()
	x.Send(1, stamp) // want `wall-clock read \(time\.Now\).*helper\.go.*via helper\.Stamp.*flows into the Ctx\.Send message payload`
}

// crossPackagePid: process identity reaches the payload via an intermediate
// arithmetic expression.
func crossPackagePid(x *Ctx) {
	v := helper.Pid()*2 + 1
	x.Send(2, v) // want `process environment/identity \(os\.Getpid\).*via helper\.Pid.*flows into the Ctx\.Send message payload`
}

// crossPackageMapOrder: keys collected in map-range order are sent without
// sorting — the order taint survives the package boundary.
func crossPackageMapOrder(x *Ctx, m map[int]bool) {
	for _, k := range helper.UnsortedKeys(m) {
		x.Send(3, uint64(k)) // want `map iteration order.*via helper\.UnsortedKeys.*flows into the Ctx\.Send message payload`
	}
}

// sortedLaundering: sorting the collected keys is the sanctioned fix, so
// the same flow with a sort stays clean.
func sortedLaundering(x *Ctx, m map[int]bool) {
	keys := helper.UnsortedKeys(m)
	sort.Ints(keys)
	for _, k := range keys {
		x.Send(4, uint64(k))
	}
}

// emit forwards its argument to the sink: its summary records that
// parameter v reaches the Send payload.
func emit(x *Ctx, v uint64) {
	x.Send(5, v)
}

// indirectFlow: the tainted value enters the sink through emit — the
// finding lands at the call that injects the taint, naming the chain.
func indirectFlow(x *Ctx) {
	emit(x, helper.Draw()) // want `global math/rand source \(rand\.Intn\).*via helper\.Draw.*flows into the Ctx\.Send message payload \(via detflow\.emit\)`
}

// relayedFlow: taint survives a pass-through helper in the other package
// (parameter → return propagation in helper.Relay's summary).
func relayedFlow(x *Ctx) {
	x.Send(6, helper.Relay(helper.Stamp())) // want `wall-clock read \(time\.Now\).*flows into the Ctx\.Send message payload`
}

// selectArm: a value assigned in a multi-case select commits in whichever
// order the runtime picked.
func selectArm(x *Ctx, a, b chan uint64) {
	var v uint64
	select {
	case v = <-a:
	case v = <-b:
	}
	x.Send(7, v) // want `multi-case select arm.*flows into the Ctx\.Send message payload`
}

// statsColumn: a tainted value written into a deterministic Stats column.
func statsColumn(st *Stats) {
	st.Words = helper.Draw() // want `global math/rand source \(rand\.Intn\).*via helper\.Draw.*flows into the detflow\.Stats field Words`
}

// seededClean: the seeded draw is the sanctioned route; no finding.
func seededClean(x *Ctx) {
	x.Send(8, helper.SeededDraw(42))
}

// constClean: untainted data flows freely.
func constClean(x *Ctx, st *Stats) {
	x.Send(9, 7)
	st.Rounds = 3
}
