package mpc

import (
	"fmt"
	"math"
)

// Collectives: the standard O(1)-round coordination primitives of
// near-linear-memory MPC / congested-clique algorithms ("every machine
// reports a summary; the coordinator decides; the decision is broadcast").
// Each collective is implemented with real messages through Step so rounds,
// message counts, and bandwidth are all metered; the coordinator's local
// computation is the simulated machine 0.

// Gather runs one round in which every machine sends local(x) to machine 0,
// and returns the payloads indexed by source machine.
func (c *Cluster) Gather(name string, local func(x *Ctx) []uint64) ([][]uint64, error) {
	err := c.Step(name, func(x *Ctx) {
		payload := local(x)
		if len(payload) > 0 || x.Machine != 0 {
			x.SendOwned(0, payload)
		}
	})
	if err != nil {
		return nil, err
	}
	out := make([][]uint64, c.Machines())
	for _, msg := range c.inboxes[0] {
		out[msg.Src] = append(out[msg.Src], msg.Payload...)
	}
	c.inboxes[0] = nil
	return out, nil
}

// Broadcast runs one round in which machine 0 sends payload to every other
// machine. The payload is returned for convenience so coordinator code can
// chain on it.
func (c *Cluster) Broadcast(name string, payload []uint64) ([]uint64, error) {
	err := c.Step(name, func(x *Ctx) {
		if x.Machine != 0 {
			return
		}
		for dst := 1; dst < c.Machines(); dst++ {
			x.Send(dst, payload...)
		}
	})
	if err != nil {
		return nil, err
	}
	for m := 1; m < c.Machines(); m++ {
		c.inboxes[m] = nil
	}
	return payload, nil
}

// AllReduceSumUint gathers a uint64 vector from every machine, sums them
// coordinate-wise at the coordinator and broadcasts the result. Costs two
// rounds. All machines must return vectors of equal length.
func (c *Cluster) AllReduceSumUint(name string, local func(x *Ctx) []uint64) ([]uint64, error) {
	parts, err := c.Gather(name+"/gather", local)
	if err != nil {
		return nil, err
	}
	var sum []uint64
	for m, part := range parts {
		if part == nil {
			continue
		}
		if sum == nil {
			sum = make([]uint64, len(part))
		}
		if len(part) != len(sum) {
			return nil, fmt.Errorf("mpc: allreduce %q: machine %d sent %d words, want %d", name, m, len(part), len(sum))
		}
		for i, w := range part {
			sum[i] += w
		}
	}
	if _, err := c.Broadcast(name+"/bcast", sum); err != nil {
		return nil, err
	}
	return sum, nil
}

// AllReduceSumFloat is AllReduceSumUint for float64 vectors (transported as
// IEEE-754 bit patterns).
func (c *Cluster) AllReduceSumFloat(name string, local func(x *Ctx) []float64) ([]float64, error) {
	parts, err := c.Gather(name+"/gather", func(x *Ctx) []uint64 {
		fs := local(x)
		words := make([]uint64, len(fs))
		for i, f := range fs {
			words[i] = math.Float64bits(f)
		}
		return words
	})
	if err != nil {
		return nil, err
	}
	var sum []float64
	for m, part := range parts {
		if part == nil {
			continue
		}
		if sum == nil {
			sum = make([]float64, len(part))
		}
		if len(part) != len(sum) {
			return nil, fmt.Errorf("mpc: allreduce %q: machine %d sent %d words, want %d", name, m, len(part), len(sum))
		}
		for i, w := range part {
			sum[i] += math.Float64frombits(w)
		}
	}
	out := make([]uint64, len(sum))
	for i, f := range sum {
		out[i] = math.Float64bits(f)
	}
	if _, err := c.Broadcast(name+"/bcast", out); err != nil {
		return nil, err
	}
	return sum, nil
}

// AllReduceMaxUint gathers a single uint64 from every machine and broadcasts
// the maximum. Costs two rounds.
func (c *Cluster) AllReduceMaxUint(name string, local func(x *Ctx) uint64) (uint64, error) {
	parts, err := c.Gather(name+"/gather", func(x *Ctx) []uint64 {
		return []uint64{local(x)}
	})
	if err != nil {
		return 0, err
	}
	var best uint64
	for _, part := range parts {
		for _, w := range part {
			if w > best {
				best = w
			}
		}
	}
	if _, err := c.Broadcast(name+"/bcast", []uint64{best}); err != nil {
		return 0, err
	}
	return best, nil
}
