package rulingset

import (
	"math/rand"
	"slices"

	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/mpc"
)

// _maxAdaptiveLevels caps the adaptive recursion as a safety net; every
// level shrinks the instance in practice, and stall detection forces a solve
// if one does not.
const _maxAdaptiveLevels = 16

// RandRulingAdaptive computes a ruling set whose radius is chosen at
// runtime: the smallest β (up to a safety cap) such that the residual
// instance fits the per-machine memory budget. See DetRulingAdaptive.
func RandRulingAdaptive(g *graph.Graph, o Options) (Result, error) {
	return rulingAdaptive(g, o, false)
}

// DetRulingAdaptive answers the deployment question "what domination radius
// do I need for my machines?": it runs derandomized sparsification levels —
// each level costs one hop of radius and shrinks the instance — until the
// current instance fits the residual budget (Options.MemoryWords-style
// budget via Options.ResidualBudget, defaulting to the cluster's S), then
// ships it to one machine and solves exactly. With a budget that admits the
// whole input it degenerates to an exact MIS (β = 1); as the budget shrinks
// the radius grows one level at a time.
func DetRulingAdaptive(g *graph.Graph, o Options) (Result, error) {
	return rulingAdaptive(g, o, true)
}

func rulingAdaptive(g *graph.Graph, o Options, deterministic bool) (Result, error) {
	if err := o.durableUnsupported("RulingAdaptive"); err != nil {
		return Result{}, err
	}
	var (
		total   mpc.Stats
		phases  []PhaseStat
		stalled bool
	)
	rng := rand.New(rand.NewSource(o.Seed))
	cur := g
	origOf := make([]int32, g.N())
	for i := range origOf {
		origOf[i] = int32(i)
	}

	for level := 0; ; level++ {
		d, opts, err := distribute(cur, o)
		if err != nil {
			return Result{}, err
		}
		c := d.Cluster()
		budget := opts.ResidualBudget
		if budget <= 0 {
			budget = c.Budget()
		}
		fits := cur.N()+2*cur.M() <= budget

		if fits || stalled || level >= _maxAdaptiveLevels {
			// Ship the whole current instance and solve it exactly.
			st := newSparsifyState(cur.N())
			st.absorbActive()
			members, residual, err := solveResidual(d, st, opts)
			if err != nil {
				return Result{}, err
			}
			for i, v := range members {
				members[i] = origOf[v]
			}
			slices.Sort(members)
			total = mpc.MergeStats(total, c.Stats())
			return Result{
				Members:   members,
				Beta:      level + 1,
				Stats:     total,
				Phases:    phases,
				ResidualN: residual.N(),
				ResidualM: residual.M(),
			}, nil
		}

		delta, err := maxDegree(d)
		if err != nil {
			return Result{}, err
		}
		st := newSparsifyState(cur.N())
		if err := registerCheckpoint(c, opts, st.active, st.candidates); err != nil {
			return Result{}, err
		}
		if err := runPhases(d, opts, st, schedule(int(delta)), deterministic, rng); err != nil {
			return Result{}, err
		}
		st.absorbActive()

		sub, _, toOrig := cur.InducedSubgraph(st.candidates.Contains)
		if sub.N() >= cur.N() && sub.M() >= cur.M() {
			// No shrinkage (possible only under degenerate seed policies):
			// force the solve next level rather than loop forever.
			stalled = true
		}
		if err := c.ChargeRounds("adaptive/relabel", 1); err != nil {
			return Result{}, err
		}
		next := make([]int32, sub.N())
		for i, v := range toOrig {
			next[i] = origOf[v]
		}
		origOf = next
		cur = sub
		total = mpc.MergeStats(total, c.Stats())
		phases = append(phases, st.phases...)
	}
}
