package experiments

import (
	"fmt"

	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/rulingset"
)

// T8CliqueVsMPC compares the congested-clique implementation against the MPC
// simulator on the same graph and schedule. Predicted shape: both run the
// identical Θ(log log Δ) phases, but the clique's scatter-aggregate makes a
// conditional-expectation chunk O(1) rounds for any width up to log₂ n — so
// deterministic clique rounds *fall* as z grows with no bandwidth cliff,
// while the MPC gather's payload grows like 2^z per machine until it blows
// the budget (the T3 cliff).
func T8CliqueVsMPC(cfg Config) (Report, error) {
	n := 2048
	if cfg.Quick {
		n = 512
	}
	g := mustGNP(n, 12, cfg.Seed)
	table := metrics.NewTable("T8: congested clique vs MPC (DetRuling2)",
		"z", "clique rounds", "clique violations", "mpc rounds", "mpc peak recv", "phases")
	var cliqueRounds []int
	cliffless := true
	for _, z := range []int{2, 4, 8} {
		cl, err := rulingset.CliqueDetRuling2(g, rulingset.Options{ChunkBits: z})
		if err != nil {
			return Report{}, err
		}
		if !rulingset.IsRulingSet(g, cl.Members, 2) {
			return Report{}, fmt.Errorf("clique output invalid at z=%d", z)
		}
		mp, err := rulingset.DetRuling2(g, rulingset.Options{ChunkBits: z})
		if err != nil {
			return Report{}, err
		}
		table.AddRow(z, cl.Stats.Rounds, len(cl.Stats.Violations), mp.Stats.Rounds, mp.Stats.PeakRecv, len(cl.Phases))
		cliqueRounds = append(cliqueRounds, cl.Stats.Rounds)
		if len(cl.Stats.Violations) != 0 {
			cliffless = false
		}
	}
	monotone := true
	for i := 1; i < len(cliqueRounds); i++ {
		if cliqueRounds[i] > cliqueRounds[i-1] {
			monotone = false
		}
	}
	// Baseline comparison: the randomized algorithm costs about the same in
	// both models (no seed search to pay for).
	clRand, err := rulingset.CliqueRandRuling2(g, rulingset.Options{Seed: cfg.Seed})
	if err != nil {
		return Report{}, err
	}
	mpRand, err := rulingset.RandRuling2(g, rulingset.Options{Seed: cfg.Seed})
	if err != nil {
		return Report{}, err
	}
	return Report{
		ID:     "T8",
		Title:  "congested clique vs MPC",
		Tables: []*metrics.Table{table},
		Notes: []string{
			fmt.Sprintf("shape: clique deterministic rounds non-increasing in z with zero bandwidth violations (O(1)-round chunks): %v", monotone && cliffless),
			fmt.Sprintf("randomized baseline: clique %d rounds vs MPC %d rounds (both Θ(log log Δ) phases)",
				clRand.Stats.Rounds, mpRand.Stats.Rounds),
		},
	}, nil
}
