package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/rulingset/mprs/internal/trace"
)

// TestFixtureGolden renders the committed fixture trace and compares against
// the golden report byte for byte. Regenerate with UPDATE_GOLDEN=1 after
// intentional report changes.
func TestFixtureGolden(t *testing.T) {
	var b bytes.Buffer
	if err := run([]string{filepath.Join("testdata", "fixture.jsonl")}, &b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fixture.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("report drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, b.Bytes(), want)
	}
}

// TestFixtureJSON checks the machine-readable report: valid JSON, the same
// aggregates as the text report, and deterministic ordering.
func TestFixtureJSON(t *testing.T) {
	render := func() []byte {
		var b bytes.Buffer
		if err := run([]string{"-json", "-top", "3", filepath.Join("testdata", "fixture.jsonl")}, &b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	first := render()
	if !bytes.Equal(first, render()) {
		t.Fatal("JSON report not deterministic")
	}
	var rep Report
	if err := json.Unmarshal(first, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Header.Algo != "det2" || rep.Header.Seed != 5 {
		t.Errorf("header wrong: %+v", rep.Header)
	}
	if rep.Rounds != 44 || len(rep.Heaviest) != 3 {
		t.Errorf("rounds=%d heaviest=%d, want 44 and 3", rep.Rounds, len(rep.Heaviest))
	}
	if len(rep.Spans) == 0 || rep.Spans[0].Span != "setup" {
		t.Errorf("spans not in first-appearance order: %+v", rep.Spans)
	}
	var total int64
	for _, s := range rep.Spans {
		total += s.Words
	}
	if total != rep.Words {
		t.Errorf("span words %d do not sum to total %d", total, rep.Words)
	}
	if rep.Recovery.Crashes == 0 || rep.Recovery.Dropped == 0 {
		t.Errorf("fixture's fault activity missing from report: %+v", rep.Recovery)
	}
}

// TestCriticalMachine pins the argmax and its deterministic tie-break.
func TestCriticalMachine(t *testing.T) {
	c, ok := critical(trace.Event{Round: 4, Span: "s", Sent: []int{1, 5, 5}, Recv: []int{0, 2, 2}})
	if !ok || c.Machine != 1 || c.Sent != 5 || c.Recv != 2 {
		t.Errorf("critical = %+v (ties must break to the lowest id)", c)
	}
	// Ragged vectors: recv longer than sent.
	c, ok = critical(trace.Event{Round: 5, Sent: []int{1}, Recv: []int{0, 9}})
	if !ok || c.Machine != 1 || c.Sent != 0 || c.Recv != 9 {
		t.Errorf("ragged critical = %+v", c)
	}
	if _, ok := critical(trace.Event{Round: 6}); ok {
		t.Error("event without vectors produced a critical machine")
	}
}

// TestHeadlessTrace: traces from older producers (no header line) still
// render, with the header section degraded gracefully.
func TestHeadlessTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.jsonl")
	content := `{"round":1,"step":"a","span":"setup","words":3,"sent":[3],"recv":[3]}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := run([]string{path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(no header)") {
		t.Errorf("headerless trace not handled:\n%s", b.String())
	}
}

// TestResumedTraceAnnounced: a trace whose header carries resumed_from (a
// durable-checkpoint resume) says so in the report, so a reader knows the
// file holds only the post-resume suffix of the run.
func TestResumedTraceAnnounced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "resumed.jsonl")
	content := `{"schema":"mprs-trace/1","algo":"det2","spec":"t","seed":1,"machines":4,"resumed_from":12}` + "\n" +
		`{"round":13,"step":"a","span":"setup","words":3,"sent":[3],"recv":[3]}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := run([]string{path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "resumed from durable checkpoint at round 12") {
		t.Errorf("resume round not announced:\n%s", b.String())
	}
}

func TestUsageAndVersion(t *testing.T) {
	var b bytes.Buffer
	if err := run(nil, &b); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"-version"}, &b); err != nil {
		t.Errorf("-version: %v", err)
	}
	if !strings.Contains(b.String(), "traceview") {
		t.Errorf("version output %q", b.String())
	}
	if err := run([]string{filepath.Join("testdata", "nope.jsonl")}, &b); err == nil {
		t.Error("missing file accepted")
	}
}
