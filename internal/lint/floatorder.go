package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatorder flags float32/float64 accumulation inside the body of a map
// range. Floating-point addition is not associative, so summing map values
// in Go's randomized iteration order produces run-dependent low-order bits —
// which the golden traces and the shortest-round-trip metric formatting
// then faithfully expose as diffs. Accumulate over a sorted key slice (or
// sum integers/bit patterns) instead.
var floatorderAnalyzer = &Analyzer{
	Name: "floatorder",
	Doc:  "flag floating-point accumulation inside map iteration",
	Run:  runFloatorder,
}

func runFloatorder(p *Pass) {
	for _, f := range p.Files {
		var mapRanges []*ast.RangeStmt
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			switch stmt := n.(type) {
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(stmt.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						mapRanges = append(mapRanges, stmt)
					}
				}
			case *ast.AssignStmt:
				if len(mapRanges) == 0 || !insideAny(mapRanges, stmt.Pos()) {
					return true
				}
				p.checkFloatAccum(stmt)
			}
			return true
		})
	}
}

// insideAny reports whether pos lies in the body of any recorded map range.
func insideAny(ranges []*ast.RangeStmt, pos token.Pos) bool {
	for _, rs := range ranges {
		if rs.Body.Pos() <= pos && pos < rs.Body.End() {
			return true
		}
	}
	return false
}

// checkFloatAccum flags `x op= v` and `x = x op v` forms with a float LHS.
func (p *Pass) checkFloatAccum(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 && isFloat(p.Info.TypeOf(as.Lhs[0])) {
			p.Reportf(as.Pos(), "float accumulation inside a map range: iteration order changes the result bits (FP addition is not associative); accumulate over sorted keys instead")
		}
	case token.ASSIGN:
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok || !isFloat(p.Info.TypeOf(lhs)) {
			return
		}
		obj := p.objectOf(lhs)
		if obj == nil {
			return
		}
		if bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok && p.mentionsObj(bin, obj) {
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				p.Reportf(as.Pos(), "float accumulation inside a map range: iteration order changes the result bits (FP addition is not associative); accumulate over sorted keys instead")
			}
		}
	}
}

// mentionsObj reports whether obj appears as an operand of the (possibly
// nested) binary expression.
func (p *Pass) mentionsObj(e ast.Expr, obj types.Object) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.objectOf(e) == obj
	case *ast.BinaryExpr:
		return p.mentionsObj(e.X, obj) || p.mentionsObj(e.Y, obj)
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
