package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/rulingset/mprs/internal/trace"
)

// TestFlightRoundTrip pins the artifact format: header line plus events,
// schema and count stamped by the writer.
func TestFlightRoundTrip(t *testing.T) {
	dir := t.TempDir()
	evs := []trace.Event{
		{Round: 7, Step: "route", Span: "gather", Words: 40},
		{Round: 8, Step: "route", Span: "gather", Words: 44},
	}
	hdr := FlightHeader{Worker: 1, Attempt: 2, Round: 8, Kind: "crash", Reason: "heartbeat lost", Algo: "rs2", Spec: "grid:100"}
	path, err := WriteFlightFile(dir, hdr, evs)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "flight-w1-a2.jsonl"); path != want {
		t.Errorf("path = %q, want %q", path, want)
	}
	got, gotEvs, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != FlightSchema || got.Events != 2 {
		t.Errorf("header = %+v", got)
	}
	if got.Worker != 1 || got.Attempt != 2 || got.Kind != "crash" || got.Reason != "heartbeat lost" {
		t.Errorf("header fields = %+v", got)
	}
	if len(gotEvs) != 2 || gotEvs[0].Round != 7 || gotEvs[1].Words != 44 {
		t.Errorf("events = %+v", gotEvs)
	}
}

// TestFlightEmptyRing is the saddest post-mortem: a worker that died before
// reporting any superstep still leaves a parseable artifact.
func TestFlightEmptyRing(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteFlightFile(dir, FlightHeader{Worker: 0, Kind: "stall", Reason: "no progress"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hdr, evs, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Events != 0 || len(evs) != 0 {
		t.Errorf("empty flight = %+v / %+v", hdr, evs)
	}
}

// TestFlightRejectsForeign pins schema validation on read.
func TestFlightRejectsForeign(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(path, []byte(`{"schema":"mprs-trace/1"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFlightFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("foreign schema error = %v", err)
	}
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFlightFile(path); err == nil {
		t.Error("empty artifact accepted")
	}
}
