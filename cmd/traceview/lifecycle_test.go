package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lifecycleFixture is a representative supervisor stream: one injected kill
// with backoff and restart, one stall, and a clean finish.
const lifecycleFixture = `{"schema":"mprs-lifecycle/1","workers":3,"heartbeat_ms":5000,"max_restarts":2}
{"seq":1,"kind":"start","worker":0,"round":0}
{"seq":2,"kind":"start","worker":1,"round":0}
{"seq":3,"kind":"start","worker":2,"round":0}
{"seq":4,"kind":"kill","worker":1,"round":10}
{"seq":5,"kind":"crash","worker":1,"round":10,"note":"injected kill"}
{"seq":6,"kind":"backoff","worker":1,"round":10,"attempt":1,"backoff_ms":100}
{"seq":7,"kind":"restart","worker":1,"round":10,"attempt":1}
{"seq":8,"kind":"stall","worker":2,"round":20,"note":"missed heartbeat deadline"}
{"seq":9,"kind":"backoff","worker":2,"round":20,"attempt":1,"backoff_ms":100}
{"seq":10,"kind":"restart","worker":2,"round":20,"attempt":1}
{"seq":11,"kind":"result","worker":1,"round":48,"attempt":1}
{"seq":12,"kind":"result","worker":2,"round":48,"attempt":1}
{"seq":13,"kind":"result","worker":0,"round":48}
{"seq":14,"kind":"done","worker":0,"round":48}
`

func writeLifecycleFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.lifecycle")
	if err := os.WriteFile(path, []byte(lifecycleFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLifecycleTimeline: a lifecycle stream is auto-detected by schema and
// rendered as the restart timeline rather than a superstep report.
func TestLifecycleTimeline(t *testing.T) {
	var b bytes.Buffer
	if err := run([]string{writeLifecycleFixture(t)}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"lifecycle: mprs-lifecycle/1 workers=3 heartbeat=5000ms max_restarts=2",
		"per-worker",
		"restart timeline",
		"injected kill",
		"missed heartbeat deadline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestLifecycleJSON checks the machine-readable lifecycle report and the
// per-worker aggregation.
func TestLifecycleJSON(t *testing.T) {
	var b bytes.Buffer
	if err := run([]string{"-json", writeLifecycleFixture(t)}, &b); err != nil {
		t.Fatal(err)
	}
	var rep LifecycleReport
	if err := json.Unmarshal(b.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Header.Workers != 3 || len(rep.Events) != 14 || len(rep.Workers) != 3 {
		t.Fatalf("report shape: workers=%d events=%d timelines=%d", rep.Header.Workers, len(rep.Events), len(rep.Workers))
	}
	w1, w2 := rep.Workers[1], rep.Workers[2]
	if w1.Crashes != 1 || w1.Restarts != 1 || w1.LastJoin != 10 || w1.FinalOutcome != "result" {
		t.Errorf("worker 1 timeline: %+v", w1)
	}
	if w2.Stalls != 1 || w2.Restarts != 1 || w2.LastJoin != 20 {
		t.Errorf("worker 2 timeline: %+v", w2)
	}
	if rep.Workers[0].Crashes != 0 || rep.Workers[0].Restarts != 0 {
		t.Errorf("worker 0 timeline: %+v", rep.Workers[0])
	}
}

// TestLifecycleMalformed: a stream with a broken line reports the line, and
// a superstep trace is NOT routed to the lifecycle path.
func TestLifecycleMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.lifecycle")
	bad := `{"schema":"mprs-lifecycle/1","workers":1}` + "\n" + `{"seq":` + "\n"
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := run([]string{path}, &b); err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Errorf("broken line 2 not reported: %v", err)
	}
	// The regular fixture trace still takes the superstep path.
	b.Reset()
	if err := run([]string{filepath.Join("testdata", "fixture.jsonl")}, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "restart timeline") {
		t.Error("superstep trace routed to the lifecycle renderer")
	}
}
