package rulingset

import (
	"fmt"
	"math/rand"
	"slices"

	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/mpc"
)

// RandRulingBeta computes a β-ruling set of g (β >= 1) with the randomized
// recursive sparsification scheme; see DetRulingBeta for the structure.
// β = 1 delegates to LubyMIS, β = 2 to the sample-and-sparsify 2-ruling set.
func RandRulingBeta(g *graph.Graph, beta int, o Options) (Result, error) {
	return rulingBeta(g, beta, o, false)
}

// DetRulingBeta computes a β-ruling set of g (β >= 1) deterministically by
// recursive sparsification: the escalating phase schedule is split into β−1
// groups; each level runs its group of derandomized sampling phases, folds
// everything still active into the candidate set (every vertex is then
// within one hop of the candidates), and recurses on the candidate-induced
// subgraph. The last level ships its residual instance to one machine and
// solves it greedily. Each level costs one hop of domination radius and buys
// a strictly smaller instance for the remaining phases — the paper's
// radius-for-resources tradeoff (experiment F2).
func DetRulingBeta(g *graph.Graph, beta int, o Options) (Result, error) {
	return rulingBeta(g, beta, o, true)
}

func rulingBeta(g *graph.Graph, beta int, o Options, deterministic bool) (Result, error) {
	if beta < 1 {
		return Result{}, fmt.Errorf("rulingset: beta %d < 1", beta)
	}
	if beta == 1 {
		return lubyMIS(g, o, deterministic)
	}
	if beta == 2 {
		return ruling2(g, o, deterministic)
	}
	if err := o.durableUnsupported("RulingBeta"); err != nil {
		return Result{}, err
	}

	var (
		rng      *rand.Rand
		total    mpc.Stats
		phases   []PhaseStat
		groups   [][]int
		members  []int32
		residual *graph.Graph
	)
	rng = rand.New(rand.NewSource(o.Seed))
	cur := g
	// origOf maps current-level vertex ids back to g's ids.
	origOf := make([]int32, g.N())
	for i := range origOf {
		origOf[i] = int32(i)
	}

	for level := 0; level < beta-1; level++ {
		d, opts, err := distribute(cur, o)
		if err != nil {
			return Result{}, err
		}
		c := d.Cluster()
		if level == 0 {
			delta, err := maxDegree(d)
			if err != nil {
				return Result{}, err
			}
			groups = splitSchedule(schedule(int(delta)), beta-1)
		}
		st := newSparsifyState(cur.N())
		if err := registerCheckpoint(c, opts, st.active, st.candidates); err != nil {
			return Result{}, err
		}
		if err := runPhases(d, opts, st, groups[level], deterministic, rng); err != nil {
			return Result{}, err
		}
		st.absorbActive()

		if level == beta-2 {
			members, residual, err = solveResidual(d, st, opts)
			if err != nil {
				return Result{}, err
			}
			for i, v := range members {
				members[i] = origOf[v]
			}
			slices.Sort(members)
		} else {
			// Relabel to the candidate-induced subgraph for the next level.
			// The relabeling is a bounded exchange in a real deployment;
			// model it as one charged round.
			sub, _, toOrig := cur.InducedSubgraph(st.candidates.Contains)
			if err := c.ChargeRounds("beta/relabel", 1); err != nil {
				return Result{}, err
			}
			next := make([]int32, sub.N())
			for i, v := range toOrig {
				next[i] = origOf[v]
			}
			origOf = next
			cur = sub
		}
		total = mpc.MergeStats(total, c.Stats())
		phases = append(phases, st.phases...)
	}

	res := Result{
		Members: members,
		Beta:    beta,
		Stats:   total,
		Phases:  phases,
	}
	if residual != nil {
		res.ResidualN = residual.N()
		res.ResidualM = residual.M()
	}
	return res, nil
}

// splitSchedule partitions the phase schedule js into exactly parts
// contiguous groups, as evenly as possible (earlier groups take the extra
// phases; trailing groups may be empty when len(js) < parts).
func splitSchedule(js []int, parts int) [][]int {
	groups := make([][]int, parts)
	base := len(js) / parts
	extra := len(js) % parts
	at := 0
	for i := range groups {
		size := base
		if i < extra {
			size++
		}
		groups[i] = js[at : at+size]
		at += size
	}
	return groups
}
