package main

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/rulingset/mprs/internal/lint"
)

// jsonSchema versions the machine-readable output contract. Consumers pin
// this string; any breaking change to field names or semantics bumps it.
const jsonSchema = "detlint/1"

// jsonFinding is one diagnostic in -format json output. Field order is part
// of the contract: encoding/json emits struct fields in declaration order,
// so the document layout is stable across runs and Go versions.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Schema   string        `json:"schema"`
	Findings []jsonFinding `json:"findings"`
}

func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	rep := jsonReport{Schema: jsonSchema, Findings: []jsonFinding{}}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return writeIndented(w, rep)
}

type jsonSuppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Stale    bool   `json:"stale"`
}

type jsonAudit struct {
	Schema       string            `json:"schema"`
	Suppressions []jsonSuppression `json:"suppressions"`
}

func writeAuditJSON(w io.Writer, sups []lint.Suppression) error {
	rep := jsonAudit{Schema: jsonSchema, Suppressions: []jsonSuppression{}}
	for _, s := range sups {
		rep.Suppressions = append(rep.Suppressions, jsonSuppression{
			File:     s.File,
			Line:     s.Line,
			Analyzer: s.Analyzer,
			Reason:   s.Reason,
			Stale:    s.Stale,
		})
	}
	return writeIndented(w, rep)
}

func writeIndented(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

// SARIF 2.1.0 output, the subset GitHub code scanning ingests: one run, one
// rule per analyzer, one result per finding.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, diags []lint.Diagnostic, version string) error {
	driver := sarifDriver{Name: "detlint", Version: version}
	ruleIndex := make(map[string]int)
	addRule := func(id, doc string) {
		ruleIndex[id] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{ID: id, ShortDescription: sarifText{Text: doc}})
	}
	for _, a := range lint.Analyzers() {
		addRule(a.Name, a.Doc)
	}
	// The reserved "detlint" analyzer carries annotation-misuse findings.
	addRule("detlint", "malformed //detlint:ok annotation")
	results := []sarifResult{}
	for _, d := range diags {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			return fmt.Errorf("finding from unknown analyzer %q", d.Analyzer)
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	return writeIndented(w, sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	})
}
