package rulingset

import (
	"reflect"
	"testing"

	"github.com/rulingset/mprs/internal/gen"
)

func TestSeedPolicyString(t *testing.T) {
	tests := []struct {
		p    SeedPolicy
		want string
	}{
		{p: SeedConditionalExpectations, want: "cond-exp"},
		{p: SeedRandomFamily, want: "random-family"},
		{p: SeedZero, want: "zero"},
		{p: SeedPolicy(42), want: "seedpolicy(42)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.p), got, tt.want)
		}
	}
}

func TestSeedPolicyRandomFamily(t *testing.T) {
	g := gen.MustBuild("gnp:n=400,p=0.02", 13)
	a, err := DetRuling2(g, Options{SeedPolicy: SeedRandomFamily, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(g, a); err != nil {
		t.Fatal(err)
	}
	// Reproducible for equal seeds...
	b, err := DetRuling2(g, Options{SeedPolicy: SeedRandomFamily, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Members, b.Members) {
		t.Fatal("same seed, different outputs under random-family policy")
	}
	// ...but no conditional-expectation trajectory guarantee is claimed:
	// the run must still record estimator values for the ablation reports.
	for _, ps := range a.Phases {
		if ps.SeedSteps != 0 {
			t.Fatal("random-family policy must not run seed-search steps")
		}
	}
}

// TestSeedPolicyZeroMakesNoProgress documents why seed selection matters:
// the all-zero seed marks nothing, so the sparsifier makes zero progress and
// the entire graph lands in the residual instance.
func TestSeedPolicyZeroMakesNoProgress(t *testing.T) {
	g := gen.MustBuild("gnp:n=300,p=0.03", 14)
	res, err := DetRuling2(g, Options{SeedPolicy: SeedZero})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(g, res); err != nil {
		t.Fatal(err) // still correct — just not parallel
	}
	for _, ps := range res.Phases {
		if ps.Marked != 0 {
			t.Fatalf("phase %d marked %d vertices under the zero seed", ps.Phase, ps.Marked)
		}
	}
	if res.ResidualN != g.N() {
		t.Fatalf("residual n = %d, want the whole graph (%d)", res.ResidualN, g.N())
	}
}

func TestEstimatorAlphaVariants(t *testing.T) {
	g := gen.MustBuild("gnp:n=400,p=0.02", 15)
	for _, alpha := range []float64{0.5, 1, 2, 8} {
		res, err := DetRuling2(g, Options{EstimatorAlpha: alpha, ChunkBits: 4})
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if err := Check(g, res); err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
	}
}

func TestBenefitCapVariants(t *testing.T) {
	g := gen.MustBuild("gnp:n=400,p=0.03", 16)
	for _, cap := range []int{1, 2, 8, 64} {
		res, err := DetRuling2(g, Options{BenefitCap: cap, ChunkBits: 4})
		if err != nil {
			t.Fatalf("cap=%d: %v", cap, err)
		}
		if err := Check(g, res); err != nil {
			t.Fatalf("cap=%d: %v", cap, err)
		}
	}
}

func TestLubyExactThresholds(t *testing.T) {
	g := gen.MustBuild("gnp:n=300,p=0.02", 17)
	res, err := DetLubyMIS(g, Options{LubyExactThresholds: true, ChunkBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(g, res); err != nil {
		t.Fatal(err)
	}
	// Deterministic too: repeated runs agree.
	res2, err := DetLubyMIS(g, Options{LubyExactThresholds: true, ChunkBits: 4, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Members, res2.Members) {
		t.Fatal("exact-threshold Luby not deterministic")
	}
	// The guarantee holds for the Values-family estimator as well.
	for _, ps := range res.Phases {
		if ps.SeedSteps > 0 && ps.EstimatorFinal < ps.EstimatorInitial-1e-6 {
			t.Fatalf("iteration %d: realized %v < expectation %v",
				ps.Phase, ps.EstimatorFinal, ps.EstimatorInitial)
		}
	}
}

func TestUnknownSeedPolicyRejected(t *testing.T) {
	g := gen.MustBuild("gnp:n=100,p=0.05", 18)
	if _, err := DetRuling2(g, Options{SeedPolicy: SeedPolicy(99)}); err == nil {
		t.Fatal("unknown seed policy accepted")
	}
	if _, err := DetLubyMIS(g, Options{SeedPolicy: SeedPolicy(99)}); err == nil {
		t.Fatal("unknown seed policy accepted by luby")
	}
}
