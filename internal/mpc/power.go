package mpc

import (
	"fmt"

	"github.com/rulingset/mprs/internal/graph"
)

// Power computes the distance-k closure G^{≤k} (an edge wherever
// 1 <= dist(u,w) <= k) through real message exchanges, by binary
// exponentiation over the compose operation: if A covers distances <= a and
// B covers distances <= b, then A ∪ B ∪ (A∘B) covers distances <= a+b.
//
// Each compose costs two rounds — an adjacency announcement (2·m_A words)
// and an edge-emission exchange (≈ Σ_x deg_A(x)·deg_B(x) words, the genuine
// quadratic cost of graph exponentiation, checked against the memory budget
// like any other traffic). maxEdges caps the materialized closure as a
// simulator guard (<= 0 for unbounded); the bandwidth accounting flags model
// violations independently.
func (d *DistGraph) Power(k, maxEdges int) (*graph.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("mpc: power exponent %d < 1", k)
	}
	var (
		acc  *graph.Graph // covers distances <= (processed bits of k)
		base = d.g        // covers distances <= 2^i at iteration i
		err  error
	)
	for e := k; e > 0; e >>= 1 {
		if e&1 == 1 {
			acc, err = d.compose(acc, base, maxEdges)
			if err != nil {
				return nil, err
			}
		}
		if e > 1 {
			base, err = d.compose(base, base, maxEdges)
			if err != nil {
				return nil, err
			}
		}
	}
	// Charge the closure's residency under the same block partition.
	for m := 0; m < d.c.Machines(); m++ {
		lo, hi := d.c.Range(m)
		words := 0
		for v := lo; v < hi; v++ {
			words += 2 + acc.Degree(v)
		}
		if err := d.c.SetResident(m, words); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// compose returns A ∪ B ∪ (A∘B) where (A∘B) joins u to w whenever some x is
// A-adjacent to u and B-adjacent to w. A nil A acts as the identity (returns
// B). Both operands share d's vertex set and block partition.
func (d *DistGraph) compose(a, b *graph.Graph, maxEdges int) (*graph.Graph, error) {
	if a == nil {
		return b, nil
	}
	n := d.g.N()
	// Round 1: every u announces itself to the owners of its A-neighbors,
	// so the owner of x learns the set {u : u ~_A x}.
	aNbrs := make([][]int32, n)
	err := d.c.Step("power/announce", func(x *Ctx) {
		buckets := make([][]uint64, d.c.Machines())
		for u := x.Lo; u < x.Hi; u++ {
			for _, v := range a.Neighbors(u) {
				dst := d.c.Owner(int(v))
				buckets[dst] = append(buckets[dst], uint64(uint32(v))<<32|uint64(uint32(u)))
			}
		}
		for dst, payload := range buckets {
			if len(payload) > 0 {
				x.SendOwned(dst, payload)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	for m := 0; m < d.c.Machines(); m++ {
		for _, msg := range d.c.inboxes[m] {
			for _, w := range msg.Payload {
				x := int32(w >> 32)
				u := int32(uint32(w))
				aNbrs[x] = append(aNbrs[x], u)
			}
		}
		d.c.inboxes[m] = nil
	}
	// Round 2: the owner of x emits every composed pair (u, w) with u ~_A x
	// and w ~_B x to the owner of the smaller endpoint; A and B edges ride
	// along so the result is the union closure.
	parts := make([][]graph.Edge, d.c.Machines())
	err = d.c.Step("power/emit", func(xc *Ctx) {
		buckets := make([][]uint64, d.c.Machines())
		emit := func(u, w int32) {
			if u == w {
				return
			}
			if u > w {
				u, w = w, u
			}
			dst := d.c.Owner(int(u))
			buckets[dst] = append(buckets[dst], uint64(uint32(u))<<32|uint64(uint32(w)))
		}
		for x := xc.Lo; x < xc.Hi; x++ {
			for _, u := range aNbrs[x] {
				emit(u, int32(x)) // the A edge itself
				for _, w := range b.Neighbors(x) {
					emit(u, w) // the composed edge
				}
			}
			for _, w := range b.Neighbors(x) {
				emit(int32(x), w) // the B edge itself
			}
		}
		for dst, payload := range buckets {
			if len(payload) > 0 {
				xc.SendOwned(dst, payload)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for m := 0; m < d.c.Machines(); m++ {
		seen := make(map[uint64]struct{})
		for _, msg := range d.c.inboxes[m] {
			for _, w := range msg.Payload {
				if _, dup := seen[w]; dup {
					continue
				}
				seen[w] = struct{}{}
				parts[m] = append(parts[m], graph.Edge{U: int32(w >> 32), V: int32(uint32(w))})
			}
		}
		d.c.inboxes[m] = nil
		total += len(parts[m])
		if maxEdges > 0 && total > maxEdges {
			return nil, fmt.Errorf("mpc: power closure exceeds edge budget %d", maxEdges)
		}
	}
	var edges []graph.Edge
	for _, part := range parts {
		edges = append(edges, part...)
	}
	return graph.New(n, edges)
}
