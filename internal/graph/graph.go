// Package graph implements the static undirected graph substrate used by the
// MPC simulator and the ruling-set algorithms.
//
// Graphs are stored in compressed sparse row (CSR) form: simple, undirected,
// with vertices identified by integers in [0, n). All construction paths
// deduplicate parallel edges and reject self-loops, so algorithm code can
// assume a simple graph.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR form.
//
// The zero value is the empty graph on zero vertices.
type Graph struct {
	offsets []int32 // len n+1
	adj     []int32 // len 2m, neighbor lists sorted ascending
}

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V int32
}

// ErrVertexRange indicates an edge endpoint outside [0, n).
var ErrVertexRange = errors.New("graph: vertex out of range")

// New builds a graph on n vertices from the given edge list. Self-loops are
// rejected; duplicate edges (in either orientation) are merged.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.U < 0 || e.V < 0 || int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("%w: edge (%d,%d) with n=%d", ErrVertexRange, e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", e.U)
		}
	}
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	adj := make([]int32, offsets[n])
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	g := &Graph{offsets: offsets, adj: adj}
	g.sortAndDedupe()
	return g, nil
}

// MustNew is New but panics on error; intended for tests and generators whose
// inputs are correct by construction.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// sortAndDedupe sorts each adjacency list and removes duplicate entries,
// compacting the CSR arrays in place.
func (g *Graph) sortAndDedupe() {
	n := g.N()
	write := int32(0)
	newOffsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		list := g.adj[lo:hi]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		newOffsets[v] = write
		var prev int32 = -1
		for _, u := range list {
			if u != prev {
				g.adj[write] = u
				write++
				prev = u
			}
		}
	}
	newOffsets[n] = write
	g.offsets = newOffsets
	g.adj = g.adj[:write]
}

// N returns the number of vertices.
func (g *Graph) N() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int) bool {
	list := g.Neighbors(u)
	i := sort.Search(len(list), func(i int) bool { return list[i] >= int32(v) })
	return i < len(list) && list[i] == int32(v)
}

// MaxDegree returns the maximum degree Δ (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.N(); v++ {
		if dv := g.Degree(v); dv > d {
			d = dv
		}
	}
	return d
}

// AvgDegree returns the average degree 2m/n (0 for the empty graph).
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(len(g.adj)) / float64(g.N())
}

// ForEachEdge calls f once per undirected edge with u < v.
func (g *Graph) ForEachEdge(f func(u, v int32)) {
	for v := int32(0); int(v) < g.N(); v++ {
		for _, u := range g.Neighbors(int(v)) {
			if v < u {
				f(v, u)
			}
		}
	}
}

// Edges returns all undirected edges with U < V.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.M())
	g.ForEachEdge(func(u, v int32) {
		out = append(out, Edge{U: u, V: v})
	})
	return out
}

// InducedSubgraph returns the subgraph induced by keep (keep[v] reports
// whether v is retained), along with toSub mapping original vertex ids to
// subgraph ids (-1 for dropped vertices) and toOrig mapping back.
func (g *Graph) InducedSubgraph(keep func(v int) bool) (sub *Graph, toSub []int32, toOrig []int32) {
	n := g.N()
	toSub = make([]int32, n)
	var kept int32
	for v := 0; v < n; v++ {
		if keep(v) {
			toSub[v] = kept
			kept++
		} else {
			toSub[v] = -1
		}
	}
	toOrig = make([]int32, kept)
	for v := 0; v < n; v++ {
		if toSub[v] >= 0 {
			toOrig[toSub[v]] = int32(v)
		}
	}
	var edges []Edge
	g.ForEachEdge(func(u, v int32) {
		su, sv := toSub[u], toSub[v]
		if su >= 0 && sv >= 0 {
			edges = append(edges, Edge{U: su, V: sv})
		}
	})
	sub = MustNew(int(kept), edges)
	return sub, toSub, toOrig
}

// Power returns the k-th power graph G^k: vertices of G, with an edge between
// u and v iff 1 <= dist(u,v) <= k. maxEdges bounds the output size: if the
// power graph would exceed it, Power returns an error (this models the
// memory budget a real MPC implementation must respect when exponentiating).
// maxEdges <= 0 means unbounded.
func (g *Graph) Power(k int, maxEdges int) (*Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: power exponent %d < 1", k)
	}
	n := g.N()
	var edges []Edge
	// BFS from every vertex, truncated to depth k.
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for i := range dist {
		dist[i] = -1
	}
	for s := 0; s < n; s++ {
		queue = queue[:0]
		queue = append(queue, int32(s))
		dist[s] = 0
		visited := []int32{int32(s)}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			if dist[v] == int32(k) {
				continue
			}
			for _, u := range g.Neighbors(int(v)) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
					visited = append(visited, u)
				}
			}
		}
		for _, v := range visited {
			if int(v) > s {
				edges = append(edges, Edge{U: int32(s), V: v})
				if maxEdges > 0 && len(edges) > maxEdges {
					return nil, fmt.Errorf("graph: G^%d exceeds edge budget %d", k, maxEdges)
				}
			}
			dist[v] = -1
		}
	}
	return New(n, edges)
}

// BFSFrom computes hop distances from the source set. dist[v] == -1 means v
// is unreachable from every source.
func (g *Graph) BFSFrom(sources []int32) []int32 {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, n)
	for _, s := range sources {
		if dist[s] < 0 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// ConnectedComponents returns a component id per vertex and the component
// count. Ids are assigned in order of smallest contained vertex.
func (g *Graph) ConnectedComponents() (comp []int32, count int) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		comp[s] = id
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.Neighbors(int(v)) {
				if comp[u] < 0 {
					comp[u] = id
					queue = append(queue, u)
				}
			}
		}
	}
	return comp, count
}

// DegreeHistogram returns counts indexed by degree, length MaxDegree()+1.
func (g *Graph) DegreeHistogram() []int {
	h := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// Validate checks structural invariants of the CSR representation. It returns
// nil for every graph produced by New; it exists to guard deserialization.
func (g *Graph) Validate() error {
	n := g.N()
	if len(g.offsets) > 0 && g.offsets[0] != 0 {
		return errors.New("graph: offsets must start at 0")
	}
	// Pass 1: the offsets array must be monotone and within the adjacency
	// array before any slicing (including HasEdge lookups below) is safe.
	for v := 0; v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		if g.offsets[v] < 0 || int(g.offsets[v+1]) > len(g.adj) {
			return fmt.Errorf("graph: offsets of %d outside adjacency array", v)
		}
	}
	// Pass 2: adjacency contents.
	for v := 0; v < n; v++ {
		list := g.adj[g.offsets[v]:g.offsets[v+1]]
		for i, u := range list {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("%w: neighbor %d of %d", ErrVertexRange, u, v)
			}
			if int(u) == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && list[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if !g.HasEdge(int(u), v) {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", v, u)
			}
		}
	}
	if n > 0 && int(g.offsets[n]) != len(g.adj) {
		return errors.New("graph: final offset does not cover adjacency array")
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.N(), g.M(), g.MaxDegree())
}
