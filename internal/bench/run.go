package bench

import (
	"fmt"
	"time"

	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/rulingset"
)

// RunConfig controls one bench run.
type RunConfig struct {
	// Quick selects the reduced CI tier (QuickSpec instead of Spec).
	Quick bool
	// Workloads restricts the run to the named workloads; nil runs the full
	// registry.
	Workloads []string
	// Seed drives workload generation and the randomized algorithms.
	// Results are a pure function of (registry, Quick, Seed).
	Seed int64
	// StripHost zeroes host-dependent columns (wall-clock) in the output,
	// producing a fully deterministic, byte-reproducible artifact.
	StripHost bool
	// Progress, when non-nil, receives one line per completed (workload,
	// algorithm) pair.
	Progress func(string)
}

// mpcAlgo is one MPC-simulator algorithm entry.
type mpcAlgo struct {
	name string
	run  func(*graph.Graph, Workload, rulingset.Options) (rulingset.Result, error)
}

var mpcAlgos = []mpcAlgo{
	{"luby", func(g *graph.Graph, _ Workload, o rulingset.Options) (rulingset.Result, error) {
		return rulingset.LubyMIS(g, o)
	}},
	{"detluby", func(g *graph.Graph, _ Workload, o rulingset.Options) (rulingset.Result, error) {
		return rulingset.DetLubyMIS(g, o)
	}},
	{"rand2", func(g *graph.Graph, _ Workload, o rulingset.Options) (rulingset.Result, error) {
		return rulingset.RandRuling2(g, o)
	}},
	{"det2", func(g *graph.Graph, _ Workload, o rulingset.Options) (rulingset.Result, error) {
		return rulingset.DetRuling2(g, o)
	}},
	{"randbeta", func(g *graph.Graph, w Workload, o rulingset.Options) (rulingset.Result, error) {
		return rulingset.RandRulingBeta(g, beta(w), o)
	}},
	{"detbeta", func(g *graph.Graph, w Workload, o rulingset.Options) (rulingset.Result, error) {
		return rulingset.DetRulingBeta(g, beta(w), o)
	}},
	{"randab", func(g *graph.Graph, w Workload, o rulingset.Options) (rulingset.Result, error) {
		return rulingset.RandRulingAlphaBeta(g, alpha(w), beta(w), o)
	}},
	{"detab", func(g *graph.Graph, w Workload, o rulingset.Options) (rulingset.Result, error) {
		return rulingset.DetRulingAlphaBeta(g, alpha(w), beta(w), o)
	}},
}

func beta(w Workload) int {
	if w.Beta > 0 {
		return w.Beta
	}
	return 3
}

func alpha(w Workload) int {
	if w.Alpha > 0 {
		return w.Alpha
	}
	return 3
}

// cliqueAlgos are the congested-clique entries (the clique simulator's
// algorithm surface).
var cliqueAlgos = map[string]func(*graph.Graph, rulingset.Options) (rulingset.CliqueResult, error){
	"clique2":    rulingset.CliqueRandRuling2,
	"cliquedet2": rulingset.CliqueDetRuling2,
}

// Run executes the configured workloads and returns the artifact. Rows come
// out in registry order × workload algorithm order, so the result layout is
// deterministic too.
func Run(cfg RunConfig) (*File, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	var workloads []Workload
	if cfg.Workloads == nil {
		workloads = Registry()
	} else {
		for _, name := range cfg.Workloads {
			w, err := Lookup(name)
			if err != nil {
				return nil, err
			}
			workloads = append(workloads, w)
		}
	}
	names := make([]string, len(workloads))
	for i, w := range workloads {
		names[i] = w.Name
	}
	file := &File{Manifest: newManifest(cfg.Quick, cfg.Seed, names)}
	for _, w := range workloads {
		rows, err := runWorkload(w, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: workload %s: %w", w.Name, err)
		}
		file.Results = append(file.Results, rows...)
	}
	if cfg.StripHost {
		file.StripHost()
	}
	return file, nil
}

// runWorkload executes every algorithm of one workload.
func runWorkload(w Workload, cfg RunConfig) ([]Result, error) {
	spec := w.Spec
	if cfg.Quick && w.QuickSpec != "" {
		spec = w.QuickSpec
	}
	s, err := gen.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	g, err := s.Build(cfg.Seed)
	if err != nil {
		return nil, err
	}
	plan, err := mpc.ParseFaultPlan(w.Faults, cfg.Seed)
	if err != nil {
		return nil, err
	}
	opts := rulingset.Options{
		Machines:        w.Machines,
		ChunkBits:       w.ChunkBits,
		LinearSlack:     w.Slack,
		Seed:            cfg.Seed,
		Faults:          plan,
		CheckpointEvery: w.CheckpointEvery,
	}
	levels := w.Parallelism
	if len(levels) == 0 {
		levels = []int{0} // one run at the simulator default (GOMAXPROCS)
	}
	var rows []Result
	for _, name := range w.Algos {
		baseWall := 0.0 // wall-clock of the p=1 row, the speedup denominator
		for _, p := range levels {
			o := opts
			o.Parallelism = p
			row, err := runAlgo(g, w, name, o)
			if err != nil {
				return nil, fmt.Errorf("algo %s (parallelism %d): %w", name, p, err)
			}
			row.Workload = w.Name
			row.Experiment = w.Experiment
			row.Algo = name
			row.N = g.N()
			row.M = g.M()
			row.Parallelism = p
			if p == 1 {
				baseWall = row.WallMS
			} else if p > 1 && baseWall > 0 && row.WallMS > 0 {
				row.SpeedupX = baseWall / row.WallMS
			}
			rows = append(rows, row)
			if cfg.Progress != nil {
				cfg.Progress(fmt.Sprintf("%s: rounds=%d words=%d wall=%.1fms",
					row.Key(), row.Rounds, row.Words, row.WallMS))
			}
		}
	}
	return rows, nil
}

// runAlgo executes one (graph, algorithm) pair on the simulator that hosts
// it and flattens the measurements into a Result row.
func runAlgo(g *graph.Graph, w Workload, name string, opts rulingset.Options) (Result, error) {
	if run, ok := cliqueAlgos[name]; ok {
		start := time.Now() // host-dependent column; see Manifest.HostDependent
		res, err := run(g, opts)
		wall := time.Since(start)
		if err != nil {
			return Result{}, err
		}
		row := Result{
			Model:            "clique",
			Machines:         g.N(),
			Members:          len(res.Members),
			Beta:             res.Beta,
			Rounds:           res.Stats.Rounds,
			Phases:           len(res.Phases),
			SeedSteps:        seedSteps(res.Phases),
			Messages:         res.Stats.Messages,
			Words:            res.Stats.Words,
			PeakRecv:         res.Stats.PeakRecv,
			SkewSent:         res.Stats.SkewSent,
			SkewRecv:         res.Stats.SkewRecv,
			GiniSent:         res.Stats.GiniSent,
			GiniRecv:         res.Stats.GiniRecv,
			Violations:       len(res.Stats.Violations),
			RecoveredCrashes: res.Stats.RecoveredCrashes,
			RecoveryRounds:   res.Stats.RecoveryRounds,
			ReplayedWords:    res.Stats.ReplayedWords,
			DroppedMessages:  res.Stats.DroppedMessages,
			DupMessages:      res.Stats.DupMessages,
			StallRounds:      res.Stats.StallRounds,
			WallMS:           float64(wall.Microseconds()) / 1000,
		}
		if !rulingset.IsRulingSet(g, res.Members, res.Beta) {
			return Result{}, fmt.Errorf("output failed verification")
		}
		return row, nil
	}
	for _, a := range mpcAlgos {
		if a.name != name {
			continue
		}
		start := time.Now() // host-dependent column; see Manifest.HostDependent
		res, err := a.run(g, w, opts)
		wall := time.Since(start)
		if err != nil {
			return Result{}, err
		}
		row := Result{
			Model:            "mpc",
			Machines:         machines(w),
			Members:          len(res.Members),
			Beta:             res.Beta,
			Rounds:           res.Stats.Rounds,
			Phases:           len(res.Phases),
			SeedSteps:        seedSteps(res.Phases),
			Messages:         res.Stats.Messages,
			Words:            res.Stats.Words,
			PeakSent:         res.Stats.PeakSent,
			PeakRecv:         res.Stats.PeakRecv,
			PeakResident:     res.Stats.PeakResident,
			SkewSent:         res.Stats.SkewSent,
			SkewRecv:         res.Stats.SkewRecv,
			GiniSent:         res.Stats.GiniSent,
			GiniRecv:         res.Stats.GiniRecv,
			Violations:       len(res.Stats.Violations),
			RecoveredCrashes: res.Stats.RecoveredCrashes,
			RecoveryRounds:   res.Stats.RecoveryRounds,
			ReplayedWords:    res.Stats.ReplayedWords,
			DroppedMessages:  res.Stats.DroppedMessages,
			DupMessages:      res.Stats.DupMessages,
			StallRounds:      res.Stats.StallRounds,

			CheckpointBytes:    res.Stats.CheckpointBytes,
			ResumeReplayRounds: res.Stats.ResumeReplayRounds,

			WallMS: float64(wall.Microseconds()) / 1000,
		}
		if err := rulingset.Check(g, res); err != nil {
			return Result{}, fmt.Errorf("output failed verification: %w", err)
		}
		return row, nil
	}
	return Result{}, fmt.Errorf("unknown algorithm %q", name)
}

func machines(w Workload) int {
	if w.Machines > 0 {
		return w.Machines
	}
	return 8
}

func seedSteps(phases []rulingset.PhaseStat) int {
	total := 0
	for _, ps := range phases {
		total += ps.SeedSteps
	}
	return total
}
