// Package supervise runs one simulation job across real OS worker processes
// and keeps it alive: per-worker heartbeats with deterministic superstep
// progress, timeout/retry with capped exponential backoff, and kill-and-
// restart of crashed or stalled workers from the newest valid durable
// checkpoint via the existing resume-by-replay path.
//
// Every worker executes the full deterministic job (see internal/transport
// for why the execution is replicated) and owns a contiguous block of
// machines whose superstep messages it is authoritative for. The supervisor
// is a star hub: it relays each worker's Messages frames to the others,
// retains the newest frame per worker for restart re-delivery, and watches
// liveness. Because workers proceed in barrier lockstep, no worker is ever
// more than one exchange ahead of another, so the newest retained frame per
// peer is exactly what a restarting worker can still need.
//
// The contract is cross-backend bit-identity: the multi-process backend —
// including runs where the supervisor kills and restarts a worker mid-job —
// produces outputs, deterministic Stats columns and trace bytes identical to
// the in-process backend's.
package supervise

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/rulingset/mprs/internal/buildinfo"
	"github.com/rulingset/mprs/internal/durable"
	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/rulingset"
	"github.com/rulingset/mprs/internal/trace"
)

// JobSpec is the self-contained, JSON-serializable description of one run —
// everything a worker process needs to deterministically reproduce the job.
// Every field feeds the deterministic replay; observability knobs
// (TraceFile) do not alter it.
type JobSpec struct {
	// Algo names the algorithm: one of luby, detluby, rand2, det2 (the
	// single-cluster MPC drivers — the same set that supports durable
	// checkpointing, and for the same reason: one replayable superstep log).
	Algo string `json:"algo"`
	// GraphSpec generates the input (see internal/gen); GraphFile loads an
	// edge-list file instead. Exactly one must be set.
	GraphSpec string `json:"graph_spec,omitempty"`
	GraphFile string `json:"graph_file,omitempty"`
	// GenSeed seeds the generator.
	GenSeed int64 `json:"gen_seed"`

	Machines    int     `json:"machines"`
	Regime      int     `json:"regime"`
	Epsilon     float64 `json:"epsilon,omitempty"`
	MemoryWords int     `json:"memory_words,omitempty"`
	LinearSlack int     `json:"linear_slack,omitempty"`
	ChunkBits   int     `json:"chunk_bits,omitempty"`
	AlgoSeed    int64   `json:"algo_seed"`
	Strict      bool    `json:"strict,omitempty"`

	// Faults and FaultSeed reproduce the simulated fault schedule (the
	// mpc.FaultPlan spec string); independent of the physical crash
	// tolerance this package adds.
	Faults    string `json:"faults,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`

	// CheckpointEvery and CheckpointDir enable durable checkpoints; each
	// worker persists under its own w<id> subdirectory of CheckpointDir, and
	// a restarted worker resumes from its newest valid checkpoint. Without a
	// checkpoint dir a restarted worker recomputes from round 1 — slower,
	// still bit-identical.
	CheckpointEvery  int    `json:"checkpoint_every,omitempty"`
	CheckpointDir    string `json:"checkpoint_dir,omitempty"`
	CheckpointRetain int    `json:"checkpoint_retain,omitempty"`

	// TraceFile, when set, receives the deterministic JSONL superstep trace,
	// written by worker 0 only (the replicas would write identical bytes).
	TraceFile string `json:"trace_file,omitempty"`

	// Parallelism is the per-worker step execution pool size (0 =
	// GOMAXPROCS, 1 = serial); every worker inherits it. Deliberately NOT
	// part of Fingerprint: outputs, traces and checkpoint bytes are
	// bit-identical at every level, so durable checkpoints are portable
	// across parallelism settings.
	Parallelism int `json:"parallelism,omitempty"`
}

// SupportedAlgo reports whether algo can run on the multi-process backend.
func SupportedAlgo(algo string) bool {
	switch algo {
	case "luby", "detluby", "rand2", "det2":
		return true
	}
	return false
}

// SpecLabel renders the input source exactly as the CLI's trace headers and
// table titles do.
func (s JobSpec) SpecLabel() string {
	if s.GraphSpec != "" {
		return s.GraphSpec
	}
	return "file:" + s.GraphFile
}

// Validate rejects specs no worker could run.
func (s JobSpec) Validate() error {
	if !SupportedAlgo(s.Algo) {
		return fmt.Errorf("supervise: algorithm %q not supported on the multi-process backend (single-cluster MPC algorithms only: luby, detluby, rand2, det2)", s.Algo)
	}
	if (s.GraphSpec == "") == (s.GraphFile == "") {
		return fmt.Errorf("supervise: exactly one of GraphSpec and GraphFile must be set")
	}
	if s.Machines < 1 {
		return fmt.Errorf("supervise: machines %d < 1", s.Machines)
	}
	if s.CheckpointDir != "" && s.CheckpointEvery <= 0 {
		return fmt.Errorf("supervise: CheckpointDir requires CheckpointEvery > 0")
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("supervise: parallelism %d < 0", s.Parallelism)
	}
	return nil
}

// BuildGraph deterministically reconstructs the input graph.
func (s JobSpec) BuildGraph() (*graph.Graph, error) {
	if s.GraphFile != "" {
		f, err := os.Open(s.GraphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close() //detlint:ok errdrop -- read-only handle; read failures surface from ReadEdgeList
		return graph.ReadEdgeList(f)
	}
	sp, err := gen.ParseSpec(s.GraphSpec)
	if err != nil {
		return nil, err
	}
	return sp.Build(s.GenSeed)
}

// Fingerprint renders the canonical configuration string stamped into the
// workers' durable checkpoints, so a restarted worker refuses to resume a
// different configuration's state.
func (s JobSpec) Fingerprint() string {
	return fmt.Sprintf("mprs-multiproc/1 algo=%s spec=%s gen-seed=%d machines=%d regime=%d epsilon=%g memory=%d slack=%d chunk=%d algo-seed=%d strict=%t faults=%s fault-seed=%d checkpoint-every=%d",
		s.Algo, s.SpecLabel(), s.GenSeed, s.Machines, s.Regime, s.Epsilon, s.MemoryWords,
		s.LinearSlack, s.ChunkBits, s.AlgoSeed, s.Strict, s.Faults, s.FaultSeed, s.CheckpointEvery)
}

// options builds the rulingset.Options the spec describes (transport, trace
// and durable wiring are added by the caller).
func (s JobSpec) options() (rulingset.Options, error) {
	plan, err := mpc.ParseFaultPlan(s.Faults, s.FaultSeed)
	if err != nil {
		return rulingset.Options{}, err
	}
	return rulingset.Options{
		Machines:        s.Machines,
		Regime:          mpc.Regime(s.Regime),
		Epsilon:         s.Epsilon,
		MemoryWords:     s.MemoryWords,
		LinearSlack:     s.LinearSlack,
		ChunkBits:       s.ChunkBits,
		Seed:            s.AlgoSeed,
		Strict:          s.Strict,
		Faults:          plan,
		CheckpointEvery: s.CheckpointEvery,
		Parallelism:     s.Parallelism,
	}, nil
}

// runAlgo dispatches to the single-cluster MPC drivers.
func runAlgo(algo string, g *graph.Graph, o rulingset.Options) (rulingset.Result, error) {
	switch algo {
	case "luby":
		return rulingset.LubyMIS(g, o)
	case "detluby":
		return rulingset.DetLubyMIS(g, o)
	case "rand2":
		return rulingset.RandRuling2(g, o)
	case "det2":
		return rulingset.DetRuling2(g, o)
	}
	return rulingset.Result{}, fmt.Errorf("supervise: unknown algorithm %q", algo)
}

// buildStamp renders the binary's build info exactly as the CLI does for its
// trace headers; a pure function of the binary, so replicated workers of the
// same build stamp identical bytes.
func buildStamp() json.RawMessage {
	data, err := json.Marshal(buildinfo.Get())
	if err != nil {
		return nil
	}
	return data
}

// traceHeader is the job's trace header — field-for-field what the CLI's
// in-process path writes, which is what makes the trace files byte-
// comparable across backends.
func (s JobSpec) traceHeader() trace.Header {
	return trace.Header{
		Algo:     s.Algo,
		Spec:     s.SpecLabel(),
		Seed:     s.AlgoSeed,
		Machines: s.Machines,
		Build:    buildStamp(),
	}
}

// openStore opens the durable checkpoint store rooted at dir (creating it),
// stamped with the spec's fingerprint.
func (s JobSpec) openStore(dir string) (*durable.Store, error) {
	return s.openStoreFS(dir, nil)
}

// openStoreFS is openStore against an injected filesystem (nil means the
// real one) — the seam chaos disk events enter through.
func (s JobSpec) openStoreFS(dir string, fsys durable.FS) (*durable.Store, error) {
	st, err := durable.OpenFS(dir, s.Fingerprint(), s.CheckpointRetain, fsys)
	if err != nil {
		return nil, err
	}
	st.SetBuildStamp(buildStamp())
	return st, nil
}

// workerCheckpointDir is worker id's private subdirectory of the job's
// checkpoint dir — replicated workers persist identical state, but each owns
// its files so a mid-write crash of one worker cannot corrupt another's
// newest checkpoint.
func (s JobSpec) workerCheckpointDir(id int) string {
	return filepath.Join(s.CheckpointDir, fmt.Sprintf("w%d", id))
}
