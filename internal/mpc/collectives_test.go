package mpc

import (
	"testing"
)

func newTestCluster(t *testing.T, machines, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{Machines: machines}, n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGather(t *testing.T) {
	c := newTestCluster(t, 5, 50)
	parts, err := c.Gather("g", func(x *Ctx) []uint64 {
		return []uint64{uint64(x.Machine), uint64(x.Hi - x.Lo)}
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for m, part := range parts {
		if len(part) != 2 || part[0] != uint64(m) {
			t.Fatalf("machine %d part = %v", m, part)
		}
		total += int(part[1])
	}
	if total != 50 {
		t.Fatalf("ranges gathered %d", total)
	}
	if c.Stats().Rounds != 1 {
		t.Fatalf("gather cost %d rounds", c.Stats().Rounds)
	}
}

func TestBroadcast(t *testing.T) {
	c := newTestCluster(t, 4, 16)
	payload := []uint64{3, 1, 4}
	got, err := c.Broadcast("b", payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 4 {
		t.Fatalf("broadcast returned %v", got)
	}
	st := c.Stats()
	if st.Rounds != 1 {
		t.Fatalf("broadcast cost %d rounds", st.Rounds)
	}
	if st.Words != int64(3*(c.Machines()-1)) {
		t.Fatalf("broadcast words = %d", st.Words)
	}
}

func TestAllReduceSumUint(t *testing.T) {
	c := newTestCluster(t, 6, 60)
	sum, err := c.AllReduceSumUint("s", func(x *Ctx) []uint64 {
		return []uint64{uint64(x.Hi - x.Lo), 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum[0] != 60 || sum[1] != 6 {
		t.Fatalf("sum = %v", sum)
	}
	if c.Stats().Rounds != 2 {
		t.Fatalf("allreduce cost %d rounds, want 2", c.Stats().Rounds)
	}
}

func TestAllReduceSumFloat(t *testing.T) {
	c := newTestCluster(t, 3, 9)
	sum, err := c.AllReduceSumFloat("f", func(x *Ctx) []float64 {
		return []float64{0.5, float64(x.Machine)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum[0] != 1.5 || sum[1] != 3 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestAllReduceMaxUint(t *testing.T) {
	c := newTestCluster(t, 5, 25)
	maxVal, err := c.AllReduceMaxUint("m", func(x *Ctx) uint64 {
		return uint64(x.Machine * 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxVal != 28 {
		t.Fatalf("max = %d", maxVal)
	}
}

func TestAllReduceLengthMismatch(t *testing.T) {
	c := newTestCluster(t, 3, 9)
	_, err := c.AllReduceSumUint("bad", func(x *Ctx) []uint64 {
		return make([]uint64, x.Machine+1)
	})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSingleMachineCollectives(t *testing.T) {
	c := newTestCluster(t, 1, 10)
	sum, err := c.AllReduceSumUint("s", func(x *Ctx) []uint64 { return []uint64{42} })
	if err != nil || sum[0] != 42 {
		t.Fatalf("single machine: %v %v", sum, err)
	}
}
