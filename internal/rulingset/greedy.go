package rulingset

import (
	"slices"

	"github.com/rulingset/mprs/internal/graph"
)

// GreedyMIS computes a maximal independent set of g by the sequential greedy
// rule in ascending vertex order. It is the machine-local solver applied to
// residual instances by the sample-and-sparsify algorithms, and the quality
// oracle the evaluation compares set sizes against. Deterministic; O(n+m).
func GreedyMIS(g *graph.Graph) []int32 {
	n := g.N()
	blocked := make([]bool, n)
	var members []int32
	for v := 0; v < n; v++ {
		if blocked[v] {
			continue
		}
		members = append(members, int32(v))
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return members
}

// GreedyMISOrder computes a maximal independent set greedily in the given
// vertex order (a permutation of [0, n)). Used by tests to exercise order
// sensitivity and by the quality experiments.
func GreedyMISOrder(g *graph.Graph, order []int32) []int32 {
	blocked := make([]bool, g.N())
	var members []int32
	for _, v := range order {
		if blocked[v] {
			continue
		}
		members = append(members, int32(v))
		for _, u := range g.Neighbors(int(v)) {
			blocked[u] = true
		}
	}
	slices.Sort(members)
	return members
}
