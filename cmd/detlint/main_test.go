package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestTreeIsClean is the same gate CI runs: the whole module must lint
// clean, with every finding either fixed or carrying a justified
// //detlint:ok annotation.
func TestTreeIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", "../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("detlint on the tree exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestNegativeFixtureFails proves the gate has teeth: a package with known
// violations must drive the exit status to 1 and print the findings.
func TestNegativeFixtureFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-dir", "../..", "-all", "-analyzers", "maporder", "internal/lint/testdata/src/maporder"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("detlint on the maporder fixture exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[maporder]") {
		t.Errorf("findings missing from stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("summary missing from stderr:\n%s", stderr.String())
	}
}

func TestUnknownAnalyzerFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "frobnicator"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr should name the unknown analyzer:\n%s", stderr.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"maporder", "wallclock", "globalrand", "errdrop", "floatorder"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}
