package transport

import (
	"encoding/json"
	"fmt"
)

// Heartbeat is the optional body of a FrameHeartbeat frame. The liveness
// signal itself is the frame (its Round field reports progress); the body
// carries side-channel observability data. An empty payload is a complete,
// valid heartbeat — workers without telemetry enabled, and workers from
// builds predating this struct, send none — so the field set can grow
// without breaking mixed-version fleets in either direction: an old
// supervisor ignores payloads it never reads, a new supervisor treats an
// empty or partial body as absent fields.
type Heartbeat struct {
	// Telemetry is an opaque telemetry snapshot (schema mprs-telemetry/1,
	// produced and consumed by internal/telemetry). The transport does not
	// interpret it — observability bytes must never influence framing or
	// exchange.
	Telemetry json.RawMessage `json:"telemetry,omitempty"`
}

// EncodeHeartbeat renders the heartbeat body. An empty heartbeat encodes to
// nil — no payload bytes on the wire — which keeps telemetry-off runs
// byte-identical to pre-telemetry builds.
func EncodeHeartbeat(hb Heartbeat) ([]byte, error) {
	if len(hb.Telemetry) == 0 {
		return nil, nil
	}
	data, err := json.Marshal(hb)
	if err != nil {
		return nil, fmt.Errorf("transport: encode heartbeat: %w", err)
	}
	return data, nil
}

// DecodeHeartbeat parses a heartbeat payload. nil/empty means an empty
// heartbeat (older peer or telemetry off); unknown fields from newer peers
// are ignored.
func DecodeHeartbeat(payload []byte) (Heartbeat, error) {
	if len(payload) == 0 {
		return Heartbeat{}, nil
	}
	var hb Heartbeat
	if err := json.Unmarshal(payload, &hb); err != nil {
		return Heartbeat{}, fmt.Errorf("%w: heartbeat payload: %v", ErrCodec, err)
	}
	return hb, nil
}
