package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/rulingset/mprs/internal/durable"
)

// diskState builds a recognizable per-machine state for round r.
func diskState(r int) [][]uint64 {
	st := make([][]uint64, 4)
	for m := range st {
		st[m] = []uint64{uint64(m), uint64(r), 0xc0ffee}
	}
	return st
}

// openChaosStore opens a real durable.Store through the chaos FS.
func openChaosStore(t *testing.T, dir, spec string, worker, attempt int) *durable.Store {
	t.Helper()
	fsys := NewDiskFS(mustPlan(t, spec, 7), worker, attempt)
	s, err := durable.OpenFS(dir, "fp", 3, fsys)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDiskTornFallsBackOnLoad(t *testing.T) {
	dir := t.TempDir()
	s := openChaosStore(t, dir, "disk:torn@8:1", 1, 0)
	for _, r := range []int{0, 4} {
		if _, err := s.Persist(r, diskState(r)); err != nil {
			t.Fatalf("persist %d: %v", r, err)
		}
	}
	// The torn write reports success — exactly like real silent data loss.
	if _, err := s.Persist(8, diskState(8)); err != nil {
		t.Fatalf("torn persist must report success, got %v", err)
	}
	// A fresh store (clean FS) must fall back past the torn round-8 file.
	s2, err := durable.Open(dir, "fp", 3)
	if err != nil {
		t.Fatal(err)
	}
	meta, state, err := s2.LoadLatest()
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if meta.Round != 4 || state[0][1] != 4 {
		t.Fatalf("fell back to round %d, want 4", meta.Round)
	}
}

func TestDiskENOSPCIsRetryable(t *testing.T) {
	dir := t.TempDir()
	s := openChaosStore(t, dir, "disk:enospc@4:0", 0, 0)
	if _, err := s.Persist(0, diskState(0)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Persist(4, diskState(4))
	if !errors.Is(err, durable.ErrPersist) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrPersist wrapping ErrInjected", err)
	}
	// A restarted incarnation gets a clean FS and the same Persist succeeds.
	s2 := openChaosStore(t, dir, "disk:enospc@4:0", 0, 1)
	if meta, _, err := s2.LoadLatest(); err != nil || meta.Round != 0 {
		t.Fatalf("resume point: meta=%+v err=%v", meta, err)
	}
	if _, err := s2.Persist(4, diskState(4)); err != nil {
		t.Fatalf("retry on attempt 1: %v", err)
	}
}

func TestDiskFsyncErrIsRetryable(t *testing.T) {
	dir := t.TempDir()
	s := openChaosStore(t, dir, "disk:fsyncerr@4:0", 0, 0)
	if _, err := s.Persist(0, diskState(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Persist(4, diskState(4)); !errors.Is(err, durable.ErrPersist) {
		t.Fatalf("err = %v, want ErrPersist", err)
	}
	if meta, _, err := s.LoadLatest(); err != nil || meta.Round != 0 {
		t.Fatalf("previous checkpoint lost: meta=%+v err=%v", meta, err)
	}
}

func TestDiskRenameCrashLeavesTempOnly(t *testing.T) {
	dir := t.TempDir()
	s := openChaosStore(t, dir, "disk:renamecrash@4:2", 2, 0)
	if _, err := s.Persist(0, diskState(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Persist(4, diskState(4)); !errors.Is(err, durable.ErrPersist) {
		t.Fatal("rename crash must fail the persist")
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-0000000004.ckpt")); err == nil {
		t.Error("checkpoint installed despite rename crash")
	}
	// The orphaned temp file must not confuse a resuming store.
	s2, err := durable.Open(dir, "fp", 3)
	if err != nil {
		t.Fatal(err)
	}
	if meta, _, err := s2.LoadLatest(); err != nil || meta.Round != 0 {
		t.Fatalf("resume past orphan temp: meta=%+v err=%v", meta, err)
	}
}

func TestDiskManifestTornIsSilentAndAdvisory(t *testing.T) {
	dir := t.TempDir()
	s := openChaosStore(t, dir, "disk:manifesttorn@4:0", 0, 0)
	if _, err := s.Persist(0, diskState(0)); err != nil {
		t.Fatal(err)
	}
	// The manifest tear is silent: Persist succeeds, checkpoint installed.
	if _, err := s.Persist(4, diskState(4)); err != nil {
		t.Fatalf("manifest tear must be silent: %v", err)
	}
	s2, err := durable.Open(dir, "fp", 3)
	if err != nil {
		t.Fatalf("open over torn manifest: %v", err)
	}
	if meta, _, err := s2.LoadLatest(); err != nil || meta.Round != 4 {
		t.Fatalf("torn manifest masked a checkpoint: meta=%+v err=%v", meta, err)
	}
}

func TestDiskEventsFireOnceAndGateOnAttempt(t *testing.T) {
	// attempt > 0 gets the plain OS filesystem.
	if _, ok := NewDiskFS(mustPlan(t, "disk:torn@4:0", 0), 0, 1).(durable.OSFS); !ok {
		t.Error("attempt 1 not plain OSFS")
	}
	// Untargeted workers too.
	if _, ok := NewDiskFS(mustPlan(t, "disk:torn@4:0", 0), 1, 0).(durable.OSFS); !ok {
		t.Error("untargeted worker not plain OSFS")
	}
	if _, ok := NewDiskFS(nil, 0, 0).(durable.OSFS); !ok {
		t.Error("nil plan not plain OSFS")
	}
	// Within one incarnation an event fires once: re-persisting the same
	// round after an injected failure succeeds.
	dir := t.TempDir()
	s := openChaosStore(t, dir, "disk:enospc@4:0", 0, 0)
	if _, err := s.Persist(4, diskState(4)); err == nil {
		t.Fatal("first persist must fail")
	}
	if _, err := s.Persist(4, diskState(4)); err != nil {
		t.Fatalf("second persist of the same round: %v", err)
	}
}
