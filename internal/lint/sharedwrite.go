package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// sharedwrite flags writes to captured state from inside step closures — the
// function literals handed to Cluster.Step/RouteStep, which the simulators
// run concurrently on a worker pool (one goroutine per machine block, see
// mpc.Config.Parallelism). A write to a variable captured from the enclosing
// driver races between workers, and even when protected it would commit in
// scheduling order, breaking the bit-identity contract.
//
// Deterministic write shapes stay silent:
//
//   - element writes into a captured slice/array whose index depends on an
//     identifier declared inside the closure (the per-machine partition
//     pattern: out[x.Machine] = …, or marks[v] for v in [x.Lo, x.Hi));
//   - any write dominated by an equality guard on the closure parameter
//     (the single-writer gather pattern: if x.Machine == 0 { total = … }).
//
// Everything else — plain captured variables, captured map elements (map
// writes are unsynchronized AND the iteration later is order-randomized),
// fields reached through a captured base, and pointer targets — is flagged.
// Safe-by-construction exceptions carry a //detlint:ok sharedwrite
// annotation with the justification.
var sharedwriteAnalyzer = &Analyzer{
	Name: "sharedwrite",
	Doc:  "flag writes to captured state inside Step/RouteStep closures",
	Run:  runSharedwrite,
}

func runSharedwrite(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Step" && sel.Sel.Name != "RouteStep") {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					p.checkStepClosure(lit)
				}
			}
			return true
		})
	}
}

// checkStepClosure walks one step closure's body and reports shared writes.
func (p *Pass) checkStepClosure(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.FuncLit:
			// A nested literal is its own scope, but its captures of the step
			// closure's outer environment are just as shared: keep walking
			// with the same boundary.
			return true
		case *ast.AssignStmt:
			if stmt.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range stmt.Lhs {
				p.checkSharedLvalue(lit, lhs)
			}
		case *ast.IncDecStmt:
			p.checkSharedLvalue(lit, stmt.X)
		}
		return true
	})
}

// checkSharedLvalue classifies one assignment target inside the closure.
func (p *Pass) checkSharedLvalue(lit *ast.FuncLit, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	switch e := lhs.(type) {
	case *ast.Ident:
		if e.Name == "_" || !p.capturedBy(lit, e) {
			return
		}
		if p.guardedBySoleWriter(lit, e.Pos()) {
			return
		}
		p.Reportf(e.Pos(), "step closure writes captured variable %q: machine closures run concurrently on the worker pool, so the write races and commits in scheduling order; partition by machine index or move the write after the barrier", e.Name)
	case *ast.IndexExpr:
		base := rootIdent(e.X)
		if base == nil || !p.capturedBy(lit, base) {
			return
		}
		if t := p.Info.TypeOf(e.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if p.guardedBySoleWriter(lit, e.Pos()) {
					return
				}
				p.Reportf(e.Pos(), "step closure writes captured map %q: concurrent map writes fault at runtime, and later iteration is order-randomized; collect per machine into a slice indexed by x.Machine instead", base.Name)
				return
			}
		}
		// Slice/array element write: deterministic iff the slot depends on
		// the closure's own identity (parameter or a local derived from it).
		if !p.indexLocalTo(lit, e.Index) {
			if p.guardedBySoleWriter(lit, e.Pos()) {
				return
			}
			p.Reportf(e.Pos(), "step closure writes captured slice %q at an index captured from outside the closure: every machine targets the same slot, so the last-scheduled worker wins; index by x.Machine (or a value derived inside the closure)", base.Name)
		}
	case *ast.SelectorExpr:
		base := rootIdent(e.X)
		if base == nil || !p.capturedBy(lit, base) {
			return
		}
		if p.guardedBySoleWriter(lit, e.Pos()) {
			return
		}
		p.Reportf(e.Pos(), "step closure writes field %s of captured %q: shared struct state mutated from concurrent machine closures; buffer per machine and merge at the barrier", e.Sel.Name, base.Name)
	case *ast.StarExpr:
		base := rootIdent(e.X)
		if base == nil || !p.capturedBy(lit, base) {
			return
		}
		if p.guardedBySoleWriter(lit, e.Pos()) {
			return
		}
		p.Reportf(e.Pos(), "step closure writes through captured pointer %q: the target is shared across concurrent machine closures", base.Name)
	case *ast.IndexListExpr:
		if base := rootIdent(e.X); base != nil && p.capturedBy(lit, base) && !p.guardedBySoleWriter(lit, e.Pos()) {
			p.Reportf(e.Pos(), "step closure writes captured %q", base.Name)
		}
	}
}

// capturedBy reports whether id resolves to a variable declared outside the
// function literal (a capture of the driver's scope, or package state).
func (p *Pass) capturedBy(lit *ast.FuncLit, id *ast.Ident) bool {
	obj := p.objectOf(id)
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}

// indexLocalTo reports whether the index expression depends on at least one
// identifier declared inside the literal — the per-machine partition shapes
// out[x.Machine], out[v] for a range variable, out[base+offset] with a local
// base. A constant or fully captured index targets one shared slot.
func (p *Pass) indexLocalTo(lit *ast.FuncLit, idx ast.Expr) bool {
	local := false
	ast.Inspect(idx, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || local {
			return !local
		}
		if obj := p.objectOf(id); obj != nil {
			if _, isVar := obj.(*types.Var); isVar && obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
				local = true
			}
		}
		return !local
	})
	return local
}

// guardedBySoleWriter reports whether pos sits under an if whose condition
// compares an identifier or selector rooted at a closure-local object with
// == — the single-writer gather pattern (if x.Machine == 0 { … }). One
// machine writing is sequential, hence deterministic.
func (p *Pass) guardedBySoleWriter(lit *ast.FuncLit, pos token.Pos) bool {
	guarded := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || guarded {
			return !guarded
		}
		if ifStmt.Body.Pos() > pos || pos >= ifStmt.Body.End() {
			return true
		}
		if p.soleWriterCond(lit, ifStmt.Cond) {
			guarded = true
		}
		return !guarded
	})
	return guarded
}

// soleWriterCond recognizes equality conditions pinning the closure to one
// machine: `<closure-local expr> == <anything>` (or the symmetric form),
// possibly conjoined with && / nested in parens.
func (p *Pass) soleWriterCond(lit *ast.FuncLit, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL:
			return p.exprRootedInside(lit, e.X) || p.exprRootedInside(lit, e.Y)
		case token.LAND:
			return p.soleWriterCond(lit, e.X) || p.soleWriterCond(lit, e.Y)
		}
	}
	return false
}

// exprRootedInside reports whether the expression's root identifier is a
// variable declared inside the literal (the Ctx parameter or a local).
func (p *Pass) exprRootedInside(lit *ast.FuncLit, e ast.Expr) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := p.objectOf(id)
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
}

// rootIdent walks selector/index/star/paren chains to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}
