package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestReaderRoundTripsHeaderAndEvents(t *testing.T) {
	evs := []Event{
		{Round: 1, Step: "a", Span: "setup", Sent: []int{3, 0}, Recv: []int{0, 3}, Messages: 1, Words: 3, MaxSent: 3, MaxRecv: 3, GiniSent: 0.5, GiniRecv: 0.5},
		{Round: 2, Step: "b", Span: "sparsify", Charged: true},
		{Round: 3, Step: "c", Span: "finish", Crashes: 1, RecoveryRounds: 2},
	}
	var b bytes.Buffer
	w := NewJSONL(&b)
	if err := w.WriteHeader(Header{Algo: "det2", Spec: "gnp:n=16,p=0.2", Seed: 7, Machines: 2}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		w.Superstep(ev)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	h, got, err := ReadAll(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != Schema {
		t.Errorf("header schema %q, want %q", h.Schema, Schema)
	}
	if h.Algo != "det2" || h.Spec != "gnp:n=16,p=0.2" || h.Seed != 7 || h.Machines != 2 {
		t.Errorf("header fields lost: %+v", h)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Errorf("events did not round-trip:\ngot  %+v\nwant %+v", got, evs)
	}
}

func TestReaderHeaderlessTrace(t *testing.T) {
	// Pre-header traces (PR 2 output) are plain event streams; the reader
	// must treat the first line as an event, not reject it.
	var b bytes.Buffer
	w := NewJSONL(&b)
	w.Superstep(Event{Round: 1, Step: "s", Span: "setup", Words: 4})
	w.Superstep(Event{Round: 2, Step: "s", Span: "setup", Words: 5})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rd.Header(); ok {
		t.Fatal("headerless trace reported a header")
	}
	var rounds []int
	for {
		ev, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rounds = append(rounds, ev.Round)
	}
	if !reflect.DeepEqual(rounds, []int{1, 2}) {
		t.Fatalf("rounds %v, want [1 2]", rounds)
	}
}

func TestReaderEmptyTrace(t *testing.T) {
	rd, err := NewReader(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("empty trace Next = %v, want io.EOF", err)
	}
}

func TestReaderRejectsUnknownSchema(t *testing.T) {
	if _, err := NewReader(strings.NewReader(`{"schema":"other/9"}` + "\n")); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestReaderReportsBadLineWithNumber(t *testing.T) {
	in := `{"schema":"mprs-trace/1"}` + "\n" + `{"round":1}` + "\n" + "not json\n"
	rd, err := NewReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	_, err = rd.Next()
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("bad line error %v, want mention of line 3", err)
	}
}

func TestWriteHeaderForcesSchemaAndStaysDeterministic(t *testing.T) {
	render := func() string {
		var b bytes.Buffer
		w := NewJSONL(&b)
		if err := w.WriteHeader(Header{Schema: "bogus", Algo: "det2", Build: json.RawMessage(`{"go_version":"go1.22.0"}`)}); err != nil {
			t.Fatal(err)
		}
		w.Superstep(Event{Round: 1})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := render()
	if second := render(); first != second {
		t.Fatal("headered traces of identical runs differ")
	}
	if !strings.HasPrefix(first, `{"schema":"mprs-trace/1"`) {
		t.Fatalf("caller-supplied schema not overridden: %s", first)
	}
	if !strings.Contains(first, `"go_version":"go1.22.0"`) {
		t.Fatalf("build stamp dropped: %s", first)
	}
}

func TestHeaderResumedFromRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONL(&buf)
	if err := w.WriteHeader(Header{Algo: "DetRuling2", ResumedFrom: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"resumed_from":7`) {
		t.Fatalf("header line = %q", buf.String())
	}
	h, _, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.ResumedFrom != 7 {
		t.Fatalf("ResumedFrom = %d, want 7", h.ResumedFrom)
	}
	// Fresh runs omit the field entirely, keeping headers byte-identical to
	// pre-resume builds.
	buf.Reset()
	w = NewJSONL(&buf)
	if err := w.WriteHeader(Header{Algo: "DetRuling2"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "resumed_from") {
		t.Fatalf("fresh header leaks resumed_from: %q", buf.String())
	}
}
