package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// flightFixture is a representative post-mortem: a worker SIGKILLed at round
// 12 with three supersteps retained on its last heartbeat.
const flightFixture = `{"schema":"mprs-flight/1","worker":1,"attempt":1,"round":12,"kind":"crash","reason":"injected kill of worker 1 at round 12","algo":"det2","spec":"gnp:n=512,p=0.03","events":3}
{"round":10,"step":"mark","span":"sparsify","messages":40,"words":160,"max_sent":30,"max_recv":28,"gini_sent":0.4,"gini_recv":0.3}
{"round":11,"step":"gather","span":"gather","messages":12,"words":48,"max_sent":10,"max_recv":9,"gini_sent":0.2,"gini_recv":0.2}
{"round":12,"step":"gather","span":"gather","messages":8,"words":32,"max_sent":6,"max_recv":7,"gini_sent":0.1,"gini_recv":0.15}
`

func writeFlightFixture(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "flight-w1-a1.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFlightReport: a flight artifact is auto-detected by schema and
// rendered as the crash post-mortem rather than a superstep report.
func TestFlightReport(t *testing.T) {
	var b bytes.Buffer
	if err := run([]string{writeFlightFixture(t, flightFixture)}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"mprs-flight/1: crash of worker 1 (attempt 1) at round 12",
		"injected kill of worker 1 at round 12",
		"job: det2 on gnp:n=512,p=0.03",
		"last 3 supersteps before the crash",
		"flight recorder",
		"sparsify",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-mortem missing %q:\n%s", want, out)
		}
	}
}

// TestFlightJSON checks the machine-readable post-mortem.
func TestFlightJSON(t *testing.T) {
	var b bytes.Buffer
	if err := run([]string{"-json", writeFlightFixture(t, flightFixture)}, &b); err != nil {
		t.Fatal(err)
	}
	var rep FlightReport
	if err := json.Unmarshal(b.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Header.Worker != 1 || rep.Header.Kind != "crash" || len(rep.Events) != 3 {
		t.Fatalf("report shape: %+v (%d events)", rep.Header, len(rep.Events))
	}
	if rep.Events[2].Round != 12 || rep.Events[0].Span != "sparsify" {
		t.Errorf("events decoded wrong: %+v", rep.Events)
	}
}

// TestFlightEmptyAndInProcess: an artifact with no retained events renders
// the died-too-early note, and a negative worker id reads as an in-process
// run.
func TestFlightEmptyAndInProcess(t *testing.T) {
	fixture := `{"schema":"mprs-flight/1","worker":-1,"attempt":0,"round":0,"kind":"error","reason":"3 budget violation(s)","events":0}` + "\n"
	var b bytes.Buffer
	if err := run([]string{writeFlightFixture(t, fixture)}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "error of in-process run") {
		t.Errorf("in-process header not rendered:\n%s", out)
	}
	if !strings.Contains(out, "no supersteps retained") {
		t.Errorf("empty-ring note missing:\n%s", out)
	}
}
