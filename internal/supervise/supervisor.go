package supervise

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"github.com/rulingset/mprs/internal/chaos"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/rulingset"
	"github.com/rulingset/mprs/internal/telemetry"
	"github.com/rulingset/mprs/internal/trace"
	"github.com/rulingset/mprs/internal/transport"
)

// SpawnFunc builds the (unstarted) worker command for env. The supervisor
// owns the process's stdin/stdout pipes and process group; Spawn only
// chooses the executable, arguments and environment. SelfExec is the usual
// implementation.
type SpawnFunc func(env WorkerEnv) (*exec.Cmd, error)

// SelfExec returns a SpawnFunc that re-executes the current binary with the
// given arguments, passing the WorkerEnv through the EnvSpec environment
// variable — the CLI spawns `mprs worker` this way.
func SelfExec(args ...string) SpawnFunc {
	return func(env WorkerEnv) (*exec.Cmd, error) {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		blob, err := json.Marshal(env)
		if err != nil {
			return nil, err
		}
		cmd := exec.Command(exe, args...)
		// cmd.Environ (not os.Environ) so the inherited environment stays
		// subprocess plumbing: it configures the child process and never
		// feeds this process's deterministic computation.
		cmd.Env = append(cmd.Environ(), EnvSpec+"="+string(blob))
		return cmd, nil
	}
}

// KillAt injects a real SIGKILL: the supervisor kills Worker's process group
// as soon as its authoritative frame for a round >= Round arrives. Because
// the trigger is deterministic superstep progress (never wall clock), test
// and CI kill schedules reproduce.
type KillAt struct {
	Worker int
	Round  int
}

// Config tunes the supervisor.
type Config struct {
	// Workers is the worker-process count (>= 1); more workers than
	// machines is rejected (a worker must own at least one machine).
	Workers int
	// Heartbeat is the liveness deadline: a worker silent for longer is
	// declared stalled and killed. Workers send heartbeats at a quarter of
	// it. Default 10s.
	Heartbeat time.Duration
	// MaxRestarts is the per-worker restart budget. 0 is fail-fast: the
	// first crash aborts the job with a SupervisorError. N > 0 is
	// retry-N-then-abort.
	MaxRestarts int
	// BackoffInitial and BackoffMax bound the capped exponential restart
	// backoff (initial·2^(attempt−1), capped). Defaults 100ms and 5s.
	BackoffInitial time.Duration
	BackoffMax     time.Duration
	// Timeout, when > 0, is a hard wall-clock cap on the whole job: on
	// expiry every worker process group is killed and Run returns a
	// SupervisorError. The CI/test safety net against wedged workers.
	Timeout time.Duration
	// KillAt is the injected-kill schedule (tests, CI smoke).
	KillAt []KillAt
	// Lifecycle, when non-nil, receives the JSONL lifecycle stream (see
	// LifecycleSchema).
	Lifecycle io.Writer
	// Telemetry, when non-nil, receives the fleet view: workers attach
	// telemetry snapshots to their heartbeat frames and the supervisor
	// merges them (plus its own lifecycle gauges) into this Fleet — the
	// source behind the CLI's -debug-addr endpoints on the multi-process
	// backend. Purely observational: enabling it changes no deterministic
	// output.
	Telemetry *telemetry.Fleet
	// FlightDir, when set, receives one mprs-flight/1 JSONL artifact per
	// killed or lost worker: the worker's last-reported ring of recent
	// superstep events (carried on its heartbeats), flushed by the
	// supervisor at the moment it declares the worker dead — the
	// post-mortem a SIGKILL would otherwise destroy.
	FlightDir string
	// Chaos, when non-nil, is the deterministic substrate fault-injection
	// plan (see internal/chaos): wire events interpose on the worker pipes,
	// disk events ride into the worker processes via their env, and proc
	// events merge into the kill schedule. Deliberately NOT part of the
	// job's Fingerprint — chaos attacks the substrate, not the computation,
	// so checkpoints written under chaos stay resumable by clean runs (the
	// degraded fallback depends on exactly that).
	Chaos *chaos.Plan
	// FlapLimit quarantines a flapping worker: a worker that crashes
	// FlapLimit consecutive times at the same committed round is making no
	// progress (a deterministic crasher the restart loop cannot fix) and is
	// quarantined rather than burning the remaining restart budget. 0 means
	// the default (3); negative disables quarantine.
	FlapLimit int
	// MaxFleetRestarts caps restarts across the whole fleet, distinct from
	// the per-worker MaxRestarts: a restart storm spread over many workers
	// exhausts it even though no single worker hit its own budget. 0 means
	// unlimited.
	MaxFleetRestarts int
	// DegradedFallback controls what happens when supervision gives up
	// (quarantine, restart-storm budget, or a worker out of restarts): false
	// aborts with a SupervisorError (the default, fail-fast contract); true
	// degrades gracefully — kill the fleet, then finish the job as a single
	// in-process run resumed from the newest valid checkpoint, returning the
	// result alongside a structured *DegradedError so callers know the
	// multi-process contract was not honored.
	DegradedFallback bool
	// Spawn builds worker commands; required (use SelfExec).
	Spawn SpawnFunc
}

// DefaultFlapLimit is the consecutive same-round crash count that
// quarantines a worker when Config.FlapLimit is 0.
const DefaultFlapLimit = 3

func (cfg Config) withDefaults() Config {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 10 * time.Second
	}
	if cfg.BackoffInitial <= 0 {
		cfg.BackoffInitial = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.FlapLimit == 0 {
		cfg.FlapLimit = DefaultFlapLimit
	}
	return cfg
}

// SupervisorError reports a job the supervisor had to abort: the restart
// budget ran out, a worker failed deterministically, the job timed out, or
// the replicas diverged. It carries the committed round and the full Stats
// at the abort point (harvested from a surviving worker via an orderly
// stop when one is available), so even an aborted job is a complete
// measurement of the work it committed.
type SupervisorError struct {
	// Worker is the worker whose failure triggered the abort (-1 when no
	// single worker did, e.g. a timeout).
	Worker int
	// Attempts is how many times that worker had been restarted.
	Attempts int
	// CommittedRound is the newest round known committed.
	CommittedRound int
	// Stats is the accumulated model statistics at the abort point; zero
	// when no surviving worker could report them.
	Stats mpc.Stats
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *SupervisorError) Error() string {
	return fmt.Sprintf("supervise: aborted after %d committed rounds (worker %d, %d restarts): %v",
		e.CommittedRound, e.Worker, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *SupervisorError) Unwrap() error { return e.Err }

// DegradedError reports a job that finished, but not under the
// multi-process contract: supervision gave up (a quarantined flapping
// worker, an exhausted restart budget) and the job was completed by a
// single in-process run resumed from the newest valid durable checkpoint.
// Run returns it alongside a valid Result — the answer is correct and
// bit-identical to a clean run's, and callers that care about the
// fault-tolerance contract (CI, benchmarks) must still treat the run as
// failed.
type DegradedError struct {
	// Worker is the worker whose failure exhausted supervision.
	Worker int
	// Attempts is that worker's restart count at the point it gave out.
	Attempts int
	// Quarantined is true when the trigger was flap quarantine or the
	// fleet-wide restart budget rather than the worker's own MaxRestarts.
	Quarantined bool
	// Restarts is the fleet-wide restart count consumed before degrading.
	Restarts int
	// CommittedRound is the newest round the fleet had committed.
	CommittedRound int
	// ResumedFrom is the checkpoint round the fallback resumed from, or -1
	// when it recomputed from scratch.
	ResumedFrom int
	// Stats is the fallback run's full model statistics.
	Stats mpc.Stats
	// Cause is the supervision failure that forced the degrade.
	Cause error
}

// Error implements error.
func (e *DegradedError) Error() string {
	from := "scratch"
	if e.ResumedFrom >= 0 {
		from = fmt.Sprintf("checkpoint round %d", e.ResumedFrom)
	}
	return fmt.Sprintf("supervise: degraded to in-process fallback from %s after %d committed rounds (worker %d, %d attempts, %d fleet restarts): %v",
		from, e.CommittedRound, e.Worker, e.Attempts, e.Restarts, e.Cause)
}

// Unwrap exposes the supervision failure that forced the degrade.
func (e *DegradedError) Unwrap() error { return e.Cause }

// proc states.
const (
	procRunning     = iota
	procWaiting     // killed; restart scheduled after backoff
	procDone        // result received
	procDead        // exited after done, or abandoned during abort
	procQuarantined // flapping or over budget; never restarted again
)

type proc struct {
	id    int
	gen   int // spawn generation; events from older generations are stale
	state int

	cmd   *exec.Cmd
	stdin io.WriteCloser
	outQ  chan transport.Frame
	quit  chan struct{}

	attempts  int
	restartAt time.Time
	lastSeen  time.Time
	lastRound int // newest heartbeat-reported round (monitoring only)
	sentRound int // newest authoritative frame round received (the join point)
	result    []byte

	// Flap tracking: consecutive crashes pinned at the same committed round
	// mean the restart loop is making no progress.
	lastCrashRound int // sentRound at the previous crash; -1 before any
	flaps          int // consecutive crashes at lastCrashRound

	// streamEnded marks that this generation's reader goroutine saw the
	// stream end — the process has exited and can write nothing more. The
	// degraded fallback waits on this before reusing the trace file.
	streamEnded bool
}

type event struct {
	worker, gen int
	frame       transport.Frame
	err         error // non-nil: the worker's stream ended (EOF, torn frame)
	// note, when set, is a chaos-injection notification (the event carries
	// no frame and no stream state; gen is irrelevant).
	note string
}

type supervisor struct {
	spec JobSpec
	cfg  Config
	life *lifecycleWriter
	// fleet merges worker heartbeat telemetry; non-nil whenever the run
	// serves telemetry (cfg.Telemetry) or records flights (cfg.FlightDir —
	// the flight events ride on the same heartbeat payloads).
	fleet *telemetry.Fleet
	// flightErr retains the first flight-artifact write failure, surfaced
	// at Run's end like lifecycle errors: observability failures must not
	// interrupt supervision mid-job.
	flightErr error

	events chan event
	procs  []*proc
	// retained and retainedRound hold the newest authoritative frame per
	// worker. Barrier lockstep keeps workers within one exchange of each
	// other, so the newest frame per peer is exactly what a restarting
	// worker can still need (older rounds it replays locally).
	retained      [][]byte
	retainedRound []int
	killAt        []KillAt
	killFired     []bool

	// wire is the chaos frame interposer (nil without wire events).
	wire *chaos.Wire
	// restartsUsed counts restarts across the fleet against
	// cfg.MaxFleetRestarts.
	restartsUsed int

	aborting      bool
	abortErr      *SupervisorError
	abortHarvest  bool
	abortDeadline time.Time
	deadline      time.Time

	// Degraded-fallback state: degrading flips when supervision gives up
	// with DegradedFallback set. The fallback itself runs from Run's event
	// loop (fallbackRun is a free function over Run's own spec parameter —
	// deliberately not a method, so the deterministic fallback never reads
	// through the wall-clock-tainted supervisor), and leaves its outcome
	// here for finished().
	degrading   bool
	degradeDone bool
	degradedRes rulingset.Result
	degradeErr  error
	degradePend degradeInfo
}

// degradeInfo is what beginDegrade records for the event loop to finish the
// degradation with: who gave out and why.
type degradeInfo struct {
	worker      int
	attempts    int
	quarantined bool
	committed   int
	cause       error
}

// Run executes spec across cfg.Workers supervised worker processes and
// returns worker 0's result after verifying all workers returned identical
// deterministic results. On abort it returns a *SupervisorError.
func Run(spec JobSpec, cfg Config) (rulingset.Result, error) {
	cfg = cfg.withDefaults()
	if err := spec.Validate(); err != nil {
		return rulingset.Result{}, err
	}
	if cfg.Workers < 1 {
		return rulingset.Result{}, fmt.Errorf("supervise: workers %d < 1", cfg.Workers)
	}
	if cfg.Workers > spec.Machines {
		return rulingset.Result{}, fmt.Errorf("supervise: %d workers > %d machines (every worker must own at least one machine)", cfg.Workers, spec.Machines)
	}
	if cfg.Spawn == nil {
		return rulingset.Result{}, fmt.Errorf("supervise: Config.Spawn is required (see SelfExec)")
	}
	if err := cfg.Chaos.ValidateWorkers(cfg.Workers); err != nil {
		return rulingset.Result{}, err
	}
	fleet := cfg.Telemetry
	if fleet == nil && cfg.FlightDir != "" {
		fleet = telemetry.NewFleet()
	}
	s := &supervisor{
		spec:          spec,
		cfg:           cfg,
		fleet:         fleet,
		life:          newLifecycleWriter(cfg.Lifecycle, LifecycleHeader{Workers: cfg.Workers, HeartbeatMS: cfg.Heartbeat.Milliseconds(), MaxRestarts: cfg.MaxRestarts}),
		events:        make(chan event, 32*cfg.Workers),
		procs:         make([]*proc, cfg.Workers),
		retained:      make([][]byte, cfg.Workers),
		retainedRound: make([]int, cfg.Workers),
		killAt:        cfg.KillAt,
	}
	// proc:kill chaos events are exactly KillAt in plan grammar; merge them
	// so one latch array covers both sources.
	for _, k := range cfg.Chaos.Kills() {
		s.killAt = append(s.killAt, KillAt{Worker: k.Worker, Round: k.Round})
	}
	s.killFired = make([]bool, len(s.killAt))
	// Wire chaos interposes on the worker pipes; fired events surface on the
	// lifecycle stream via note events (non-blocking: dropping a note loses
	// an observability line, never supervision).
	s.wire = chaos.NewWire(cfg.Chaos, func(worker int, note string) {
		select {
		case s.events <- event{worker: worker, note: note}:
		default:
		}
	})
	if cfg.Timeout > 0 {
		s.deadline = time.Now().Add(cfg.Timeout)
	}
	for i := range s.procs {
		s.procs[i] = &proc{id: i, lastCrashRound: -1}
		if err := s.spawn(s.procs[i], 0, false); err != nil {
			s.killAll()
			return rulingset.Result{}, err
		}
	}
	defer s.killAll()

	tickEvery := cfg.Heartbeat / 4
	if tickEvery < 10*time.Millisecond {
		tickEvery = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()
	for {
		select {
		case ev := <-s.events:
			s.handle(ev, time.Now())
		case now := <-ticker.C:
			s.tick(now)
		}
		if s.degrading && !s.degradeDone {
			// Supervision gave up: wait for the killed fleet's streams to
			// end (stream EOF proves each process — the only writer of its
			// pipes and trace file — is gone), then finish the job with a
			// single in-process run. fallbackRun takes Run's own spec, not
			// the supervisor's copy: the fallback is deterministic.
			s.drainStreams()
			s.completeDegrade(fallbackRun(spec, cfg.Workers))
		}
		if res, err, done := s.finished(); done {
			if err == nil && s.life.err != nil {
				err = s.life.err
			}
			if err == nil && s.flightErr != nil {
				err = s.flightErr
			}
			return res, err
		}
	}
}

// spawn starts (or restarts) p with the given join round.
func (s *supervisor) spawn(p *proc, joinAfter int, resume bool) error {
	env := WorkerEnv{
		Spec:        s.spec,
		Worker:      p.id,
		Workers:     s.cfg.Workers,
		JoinAfter:   joinAfter,
		Resume:      resume,
		Attempt:     p.attempts,
		HeartbeatMS: s.cfg.Heartbeat.Milliseconds(),
		Telemetry:   s.fleet != nil,
	}
	if s.cfg.Chaos != nil {
		// Disk events execute inside the worker process (the durable.FS seam
		// lives there); ship the plan through the env so both sides parse the
		// identical schedule.
		env.Chaos = s.cfg.Chaos.Spec
		env.ChaosSeed = s.cfg.Chaos.Seed
	}
	cmd, err := s.cfg.Spawn(env)
	if err != nil {
		return fmt.Errorf("supervise: spawn worker %d: %w", p.id, err)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	setProcGroup(cmd)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("supervise: start worker %d: %w", p.id, err)
	}
	p.gen++
	p.state = procRunning
	p.cmd = cmd
	p.stdin = stdin
	p.outQ = make(chan transport.Frame, 4096)
	p.quit = make(chan struct{})
	p.lastSeen = time.Now()
	p.sentRound = joinAfter
	p.streamEnded = false
	kind := "start"
	if p.attempts > 0 {
		kind = "restart"
	}
	s.life.emit(LifecycleEvent{Kind: kind, Worker: p.id, Round: joinAfter, Attempt: p.attempts})
	if s.fleet != nil {
		s.fleet.SetLifecycle(p.id, telemetry.WorkerRunning, p.attempts, 0)
		s.fleet.SetRound(p.id, joinAfter)
	}

	// Writer: drains the outbound queue onto the worker's stdin. A
	// dedicated goroutine per worker so one slow or wedged pipe can never
	// block the hub (the stall deadline deals with the wedged worker). The
	// chaos downlink (nil without a reorder event for this worker) may hold
	// frames to deliver them out of order.
	go func(stdin io.WriteCloser, q chan transport.Frame, quit chan struct{}, dl *chaos.Downlink) {
		defer func() {
			if err := stdin.Close(); err != nil {
				_ = err // pipe already broken; the process is gone either way
			}
		}()
		for {
			select {
			case <-quit:
				return
			case f := <-q:
				if err := dl.Write(stdin, f); err != nil {
					<-quit // write end broken: the process died; wait for the supervisor to notice
					return
				}
			}
		}
	}(stdin, p.outQ, p.quit, s.wire.Downlink(p.id))

	// Reader: turns the worker's stream into events. Any read error —
	// clean EOF or a torn frame from a mid-write kill — ends the stream
	// with an error event; cmd.Wait then reaps the process. The chaos
	// uplink (the source reader itself without wire events) mutates frames
	// per the plan before this side ever parses them.
	go func(r io.Reader, id, gen int, cmd *exec.Cmd) {
		conn := transport.NewConn(s.wire.Uplink(id, r), io.Discard)
		for {
			f, err := conn.Read()
			if err != nil {
				s.events <- event{worker: id, gen: gen, err: err}
				break
			}
			s.events <- event{worker: id, gen: gen, frame: f}
		}
		if err := cmd.Wait(); err != nil {
			_ = err // exit status is diagnostic only; the stream end already carries the failure
		}
	}(stdout, p.id, p.gen, cmd)

	// Re-deliver the retained newest frames a restarting worker still
	// needs: every peer frame beyond its join round.
	for q := 0; q < s.cfg.Workers; q++ {
		if q != p.id && s.retained[q] != nil && s.retainedRound[q] > joinAfter {
			s.enqueue(p, transport.Frame{Type: transport.FrameMessages, Worker: q, Round: s.retainedRound[q], Payload: s.retained[q]})
		}
	}
	return nil
}

// enqueue hands a frame to p's writer. The queue is sized far beyond the
// one-exchange-in-flight protocol bound, so overflow means the worker has
// wedged with a full pipe — treat it as a stall rather than block the hub.
func (s *supervisor) enqueue(p *proc, f transport.Frame) {
	select {
	case p.outQ <- f:
	default:
		s.crash(p, fmt.Errorf("supervise: worker %d outbound queue overflow", p.id), "stall")
	}
}

func (s *supervisor) handle(ev event, now time.Time) {
	p := s.procs[ev.worker]
	if ev.note != "" {
		// A chaos injection fired; record it on the lifecycle stream. Not a
		// frame and not stream state — generation is irrelevant.
		s.life.emit(LifecycleEvent{Kind: "chaos", Worker: ev.worker, Round: p.sentRound, Attempt: p.attempts, Note: ev.note})
		return
	}
	if ev.gen != p.gen {
		return // stale stream from a generation we already killed
	}
	if ev.err != nil {
		p.streamEnded = true
		switch p.state {
		case procDone:
			p.state = procDead // clean exit after its result
		case procRunning:
			if s.aborting || s.degrading {
				p.state = procDead
				return
			}
			cause := ev.err
			if errors.Is(cause, io.EOF) {
				cause = fmt.Errorf("supervise: worker %d exited without a result", p.id)
			}
			s.crash(p, cause, "crash")
		}
		return
	}
	if s.degrading {
		return // the fleet is being torn down; frames no longer matter
	}
	p.lastSeen = now
	f := ev.frame
	switch f.Type {
	case transport.FrameHello:
		// Liveness signal only; the join round was assigned by us.
	case transport.FrameHeartbeat:
		if f.Round > p.lastRound {
			p.lastRound = f.Round
		}
		if s.fleet != nil {
			s.fleet.SetRound(p.id, f.Round)
			if hb, err := transport.DecodeHeartbeat(f.Payload); err == nil && len(hb.Telemetry) > 0 {
				if err := s.fleet.UpdateTelemetry(p.id, hb.Telemetry); err != nil {
					_ = err // foreign-schema payload: keep the previous snapshot, liveness already counted
				}
			}
		}
	case transport.FrameMessages:
		if s.cfg.Chaos.FlapsAt(p.id, f.Round) {
			// The flap kill discards the triggering frame BEFORE any relay
			// or retention: the worker's committed round stays pinned, so
			// every restarted incarnation replays to the same round and dies
			// there again — the crash loop quarantine exists to catch.
			s.life.emit(LifecycleEvent{Kind: "chaos", Worker: p.id, Round: f.Round, Attempt: p.attempts, Note: fmt.Sprintf("proc:flap kill at round %d", f.Round)})
			s.crash(p, fmt.Errorf("supervise: injected flap kill of worker %d at round %d", p.id, f.Round), "crash")
			return
		}
		if f.Round > p.lastRound {
			p.lastRound = f.Round
		}
		if s.fleet != nil {
			s.fleet.SetRound(p.id, f.Round)
		}
		if f.Round > p.sentRound {
			// No-regress guard: a reordering link can deliver round r after
			// r+1; the retained slot and the restart join point must only
			// ever move forward. The frame itself is still relayed — peers
			// handle out-of-order delivery via their stash.
			p.sentRound = f.Round
			s.retained[p.id] = f.Payload
			s.retainedRound[p.id] = f.Round
		}
		for _, q := range s.procs {
			if q.id != p.id && q.state == procRunning {
				s.enqueue(q, f)
			}
		}
		s.checkKillAt(p, f.Round)
	case transport.FrameResult:
		p.result = f.Payload
		p.state = procDone
		s.life.emit(LifecycleEvent{Kind: "result", Worker: p.id, Round: f.Round, Attempt: p.attempts})
		if s.fleet != nil {
			s.fleet.SetLifecycle(p.id, telemetry.WorkerDone, p.attempts, 0)
			s.fleet.SetRound(p.id, f.Round)
		}
	case transport.FrameError:
		var we workerError
		if err := json.Unmarshal(f.Payload, &we); err != nil {
			we = workerError{Message: fmt.Sprintf("undecodable worker error: %v", err)}
		}
		if s.aborting {
			// The stats harvest from an orderly stop.
			if we.Stopped && !s.abortHarvest {
				s.abortHarvest = true
				s.abortErr.CommittedRound = we.Round
				s.abortErr.Stats = we.Stats
			}
			p.state = procDead
			return
		}
		if we.Retryable {
			// The worker classified its own failure as environmental (a
			// failed checkpoint persist: the previous valid checkpoint is
			// still on disk). Retrying can help, so this is a crash, not a
			// deterministic abort.
			s.life.emit(LifecycleEvent{Kind: "error", Worker: p.id, Round: we.Round, Attempt: p.attempts, Note: "retryable: " + we.Message})
			s.crash(p, errors.New(we.Message), "crash")
			return
		}
		// A worker failed deterministically (algorithm error, divergence,
		// strict-mode violation): every replica would fail the same way, so
		// restarting cannot help. Abort with the worker's own report.
		s.life.emit(LifecycleEvent{Kind: "error", Worker: p.id, Round: we.Round, Attempt: p.attempts, Note: we.Message})
		s.beginAbort(p, errors.New(we.Message), &we)
	}
}

// checkKillAt fires pending injected kills triggered by p's deterministic
// superstep progress.
func (s *supervisor) checkKillAt(p *proc, round int) {
	for i, k := range s.killAt {
		if !s.killFired[i] && k.Worker == p.id && round >= k.Round {
			s.killFired[i] = true
			s.life.emit(LifecycleEvent{Kind: "kill", Worker: p.id, Round: round, Attempt: p.attempts})
			s.crash(p, fmt.Errorf("supervise: injected kill of worker %d at round %d", p.id, round), "crash")
			return
		}
	}
}

// crash kills p's process group and either schedules its restart,
// quarantines it (flapping at one round, or the fleet restart budget is
// spent), or gives up supervision (abort, or the degraded fallback). kind
// labels the lifecycle event ("crash" or "stall").
func (s *supervisor) crash(p *proc, cause error, kind string) {
	if p.state != procRunning {
		return
	}
	s.stop(p)
	s.life.emit(LifecycleEvent{Kind: kind, Worker: p.id, Round: p.sentRound, Attempt: p.attempts, Note: cause.Error()})
	s.flushFlight(p, kind, cause)
	if p.sentRound == p.lastCrashRound {
		p.flaps++
	} else {
		p.lastCrashRound = p.sentRound
		p.flaps = 1
	}
	if s.cfg.FlapLimit > 0 && p.flaps >= s.cfg.FlapLimit {
		s.quarantine(p, fmt.Errorf("supervise: worker %d crashed %d consecutive times at round %d: %w",
			p.id, p.flaps, p.sentRound, cause))
		return
	}
	if p.attempts >= s.cfg.MaxRestarts {
		p.state = procDead
		if s.fleet != nil {
			s.fleet.SetLifecycle(p.id, telemetry.WorkerDead, p.attempts, 0)
		}
		s.giveUp(p, cause, false)
		return
	}
	if s.cfg.MaxFleetRestarts > 0 && s.restartsUsed >= s.cfg.MaxFleetRestarts {
		s.quarantine(p, fmt.Errorf("supervise: fleet restart budget %d exhausted at worker %d: %w",
			s.cfg.MaxFleetRestarts, p.id, cause))
		return
	}
	p.attempts++
	s.restartsUsed++
	backoff := backoffFor(p.attempts, s.cfg.BackoffInitial, s.cfg.BackoffMax)
	p.state = procWaiting
	p.restartAt = time.Now().Add(backoff)
	s.life.emit(LifecycleEvent{Kind: "backoff", Worker: p.id, Round: p.sentRound, Attempt: p.attempts, BackoffMS: backoff.Milliseconds()})
	if s.fleet != nil {
		s.fleet.SetLifecycle(p.id, telemetry.WorkerBackoff, p.attempts, backoff.Milliseconds())
	}
}

// backoffFor computes the capped exponential restart backoff
// initial·2^(attempt−1) with explicit shift saturation: any attempt whose
// doubling would overflow — or merely exceed the cap — lands exactly on
// max. (A plain initial << (attempt-1) overflows into negative durations
// once attempt-1 reaches the width of the type; with a busy flapping worker
// attempts grow without bound, so saturation must be structural, not
// assumed.)
func backoffFor(attempt int, initial, max time.Duration) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	shift := uint(attempt - 1)
	if shift >= 63 || initial > max>>shift {
		return max
	}
	return initial << shift
}

// quarantine permanently retires p — no further restarts — and gives up
// supervision: flapping at a single round or blowing the fleet-wide budget
// means the crash-restart loop is not converging.
func (s *supervisor) quarantine(p *proc, cause error) {
	p.state = procQuarantined
	s.life.emit(LifecycleEvent{Kind: "quarantine", Worker: p.id, Round: p.sentRound, Attempt: p.attempts, Note: cause.Error()})
	if s.fleet != nil {
		s.fleet.SetLifecycle(p.id, telemetry.WorkerQuarantined, p.attempts, 0)
	}
	s.giveUp(p, cause, true)
}

// giveUp routes a supervision failure to the configured terminal path:
// degraded in-process fallback or orderly abort.
func (s *supervisor) giveUp(p *proc, cause error, quarantined bool) {
	if s.cfg.DegradedFallback {
		s.beginDegrade(p, cause, quarantined)
		return
	}
	s.beginAbort(p, cause, nil)
}

// flushFlight writes the dying worker's post-mortem: the ring of recent
// superstep events its heartbeats last reported, under an mprs-flight/1
// header naming the trigger. Runs at the moment the supervisor declares the
// worker dead — the worker itself (SIGKILLed or wedged) can flush nothing.
// Write failures are retained, not fatal: losing a post-mortem must not kill
// a job that can still restart its worker.
func (s *supervisor) flushFlight(p *proc, kind string, cause error) {
	if s.cfg.FlightDir == "" || s.fleet == nil {
		return
	}
	hdr := telemetry.FlightHeader{
		Worker:  p.id,
		Attempt: p.attempts,
		Round:   p.sentRound,
		Kind:    kind,
		Reason:  cause.Error(),
		Algo:    s.spec.Algo,
		Spec:    s.spec.SpecLabel(),
	}
	if _, err := telemetry.WriteFlightFile(s.cfg.FlightDir, hdr, s.fleet.Recent(p.id)); err != nil && s.flightErr == nil {
		s.flightErr = fmt.Errorf("supervise: flight recorder: %w", err)
	}
}

// stop tears down p's process: quit the writer, kill the process group.
func (s *supervisor) stop(p *proc) {
	select {
	case <-p.quit:
	default:
		close(p.quit)
	}
	killProcGroup(p.cmd)
}

// beginAbort starts the orderly abort: record the error, ask one surviving
// worker to stop at its next barrier so it reports the committed round and
// full Stats, and give the harvest a bounded grace period.
func (s *supervisor) beginAbort(from *proc, cause error, we *workerError) {
	if s.aborting {
		return
	}
	s.aborting = true
	worker := -1
	attempts := 0
	if from != nil {
		worker = from.id
		attempts = from.attempts
	}
	committed := 0
	for _, p := range s.procs {
		if p.sentRound > committed {
			committed = p.sentRound
		}
	}
	s.abortErr = &SupervisorError{Worker: worker, Attempts: attempts, CommittedRound: committed, Err: cause}
	if we != nil {
		// The failing worker already reported its round and Stats.
		s.abortHarvest = true
		s.abortErr.CommittedRound = we.Round
		s.abortErr.Stats = we.Stats
	}
	s.life.emit(LifecycleEvent{Kind: "abort", Worker: worker, Round: s.abortErr.CommittedRound, Attempt: attempts, Note: cause.Error()})
	stopped := false
	for _, p := range s.procs {
		if p.state == procRunning {
			if !s.abortHarvest && !stopped {
				stopped = true
				s.life.emit(LifecycleEvent{Kind: "stop", Worker: p.id, Round: p.sentRound})
				s.enqueue(p, transport.Frame{Type: transport.FrameStop, Worker: p.id})
			}
		}
	}
	if s.abortHarvest || !stopped {
		s.abortDeadline = time.Now()
		return
	}
	s.abortDeadline = time.Now().Add(2 * s.cfg.Heartbeat)
}

// beginDegrade is the graceful-degradation path: kill the fleet, wait for
// every stream to actually end (a SIGKILLed worker that has not exited yet
// could still race the fallback for the trace file), then finish the job as
// a single in-process run resumed from the newest valid checkpoint. The
// fallback runs synchronously — the event loop has nothing left to
// supervise.
func (s *supervisor) beginDegrade(from *proc, cause error, quarantined bool) {
	if s.degrading || s.aborting {
		return
	}
	s.degrading = true
	committed := 0
	for _, p := range s.procs {
		if p.sentRound > committed {
			committed = p.sentRound
		}
	}
	s.life.emit(LifecycleEvent{Kind: "degrade", Worker: from.id, Round: committed, Attempt: from.attempts, Note: cause.Error()})
	if s.fleet != nil {
		s.fleet.SetDegraded(true)
	}
	s.killAll()
	s.degradePend = degradeInfo{
		worker:      from.id,
		attempts:    from.attempts,
		quarantined: quarantined,
		committed:   committed,
		cause:       cause,
	}
	// Run's event loop drains the dying streams and invokes the fallback —
	// with its own untainted copy of the job spec — then completeDegrade
	// records the outcome.
}

// completeDegrade records the fallback's outcome for finished().
func (s *supervisor) completeDegrade(res rulingset.Result, resumedFrom int, err error) {
	d := s.degradePend
	if err != nil {
		// Even the fallback failed: report as a plain supervisor abort
		// carrying both causes.
		s.degradeErr = &SupervisorError{
			Worker:         d.worker,
			Attempts:       d.attempts,
			CommittedRound: d.committed,
			Err:            fmt.Errorf("degraded fallback failed: %w (supervision gave up: %w)", err, d.cause),
		}
		s.degradeDone = true
		return
	}
	s.degradedRes = res
	s.degradeErr = &DegradedError{
		Worker:         d.worker,
		Attempts:       d.attempts,
		Quarantined:    d.quarantined,
		Restarts:       s.restartsUsed,
		CommittedRound: d.committed,
		ResumedFrom:    resumedFrom,
		Stats:          res.Stats,
		Cause:          d.cause,
	}
	s.life.emit(LifecycleEvent{Kind: "done", Worker: d.worker, Round: res.Stats.Rounds, Note: "degraded fallback"})
	s.degradeDone = true
}

// drainStreams blocks until every spawned worker's current stream has ended
// (its process has exited) or a grace deadline passes. SIGKILL delivery is
// asynchronous; stream EOF is the proof the process — the only writer of
// its pipes and trace file — is actually gone.
func (s *supervisor) drainStreams() {
	deadline := time.NewTimer(2 * s.cfg.Heartbeat)
	defer deadline.Stop()
	for {
		pending := false
		for _, p := range s.procs {
			if p.cmd != nil && !p.streamEnded {
				pending = true
			}
		}
		if !pending {
			return
		}
		select {
		case ev := <-s.events:
			if ev.note != "" || ev.err == nil {
				continue // late frames and chaos notes no longer matter
			}
			if p := s.procs[ev.worker]; ev.gen == p.gen {
				p.streamEnded = true
				p.state = procDead
			}
		case <-deadline.C:
			return
		}
	}
}

// fallbackRun finishes the job in-process: resume from the newest valid
// checkpoint any worker persisted (they are replicas — any worker's
// checkpoint resumes the whole job), recreate the trace file so its bytes
// match an uninterrupted run's, and run the algorithm to completion. No
// checkpoint sink: there is no supervisor left to resume from anything this
// run would persist. Deliberately a free function over Run's own parameters
// rather than a supervisor method: the fallback is a deterministic run, and
// its inputs must not flow through the wall-clock-carrying supervisor state.
func fallbackRun(spec JobSpec, workers int) (res rulingset.Result, resumedFrom int, retErr error) {
	resumedFrom = -1
	g, err := spec.BuildGraph()
	if err != nil {
		return rulingset.Result{}, resumedFrom, err
	}
	opts, err := spec.options()
	if err != nil {
		return rulingset.Result{}, resumedFrom, err
	}
	if spec.CheckpointDir != "" {
		var best *mpc.ResumeState
		for w := 0; w < workers; w++ {
			store, err := spec.openStore(spec.workerCheckpointDir(w))
			if err != nil {
				continue // this worker's directory is unusable; others may not be
			}
			meta, state, err := store.LoadLatest()
			if err != nil {
				continue // no valid checkpoint here (torn, empty, or foreign)
			}
			if best == nil || meta.Round > best.Round {
				best = &mpc.ResumeState{Round: meta.Round, State: state}
			}
		}
		// A round-0 baseline is equivalent to starting from scratch.
		if best != nil && best.Round > 0 {
			opts.Resume = best
			resumedFrom = best.Round
		}
	}
	if spec.TraceFile != "" {
		f, err := os.Create(spec.TraceFile)
		if err != nil {
			return rulingset.Result{}, resumedFrom, err
		}
		tr := trace.NewJSONL(f)
		if err := tr.WriteHeader(spec.traceHeader()); err != nil {
			if cerr := f.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return rulingset.Result{}, resumedFrom, fmt.Errorf("trace %s: %w", spec.TraceFile, err)
		}
		opts.Tracer = tr
		defer func() {
			if err := tr.Close(); err != nil && retErr == nil {
				retErr = fmt.Errorf("trace %s: %w", spec.TraceFile, err)
			}
		}()
	}
	res, err = runAlgo(spec.Algo, g, opts)
	return res, resumedFrom, err
}

func (s *supervisor) tick(now time.Time) {
	if s.aborting || s.degrading {
		return // finishing is handled in finished()
	}
	if !s.deadline.IsZero() && now.After(s.deadline) {
		s.beginAbort(nil, fmt.Errorf("supervise: job timeout %v exceeded", s.cfg.Timeout), nil)
		return
	}
	for _, p := range s.procs {
		switch p.state {
		case procRunning:
			if now.Sub(p.lastSeen) > s.cfg.Heartbeat {
				s.crash(p, fmt.Errorf("supervise: worker %d missed its heartbeat deadline %v", p.id, s.cfg.Heartbeat), "stall")
			}
		case procWaiting:
			if !now.Before(p.restartAt) {
				if err := s.spawn(p, p.sentRound, s.spec.CheckpointDir != ""); err != nil {
					s.beginAbort(p, err, nil)
					return
				}
			}
		}
	}
}

// finished reports whether the run is over and with what.
func (s *supervisor) finished() (rulingset.Result, error, bool) {
	if s.degrading {
		if s.degradeDone {
			s.killAll()
			return s.degradedRes, s.degradeErr, true
		}
		return rulingset.Result{}, nil, false
	}
	if s.aborting {
		if s.abortHarvest || time.Now().After(s.abortDeadline) {
			s.killAll()
			return rulingset.Result{}, s.abortErr, true
		}
		return rulingset.Result{}, nil, false
	}
	for _, p := range s.procs {
		if p.state != procDone && p.state != procDead {
			return rulingset.Result{}, nil, false
		}
		if p.result == nil {
			return rulingset.Result{}, nil, false
		}
	}
	res, err := s.assemble()
	if err != nil {
		return rulingset.Result{}, err, true
	}
	s.life.emit(LifecycleEvent{Kind: "done", Worker: 0, Round: res.Stats.Rounds})
	return res, nil, true
}

// assemble decodes every worker's result, verifies the deterministic
// columns agree bit-for-bit, and returns worker 0's.
func (s *supervisor) assemble() (rulingset.Result, error) {
	canon := make([][]byte, s.cfg.Workers)
	var first rulingset.Result
	for i, p := range s.procs {
		var res rulingset.Result
		if err := json.Unmarshal(p.result, &res); err != nil {
			return rulingset.Result{}, fmt.Errorf("supervise: worker %d result: %w", i, err)
		}
		if i == 0 {
			first = res
		}
		c, err := json.Marshal(canonicalResult(res))
		if err != nil {
			return rulingset.Result{}, err
		}
		canon[i] = c
	}
	for i := 1; i < len(canon); i++ {
		if !bytes.Equal(canon[0], canon[i]) {
			return rulingset.Result{}, &SupervisorError{
				Worker:         i,
				CommittedRound: first.Stats.Rounds,
				Stats:          first.Stats,
				Err:            fmt.Errorf("%w: worker %d's result differs from worker 0's", transport.ErrDiverged, i),
			}
		}
	}
	return first, nil
}

// canonicalResult zeroes the columns documented as host/run-dependent —
// durable-checkpoint volume and resume replay overhead — which legitimately
// differ between a restarted worker and an uninterrupted one. Everything
// else must match bit-for-bit.
func canonicalResult(res rulingset.Result) rulingset.Result {
	res.Stats = CanonicalStats(res.Stats)
	return res
}

// CanonicalStats zeroes the run-dependent Stats columns — CheckpointBytes
// (durable-checkpoint volume, which depends on whether and when a worker was
// restarted) and ResumeReplayRounds (resume overhead, zero for an
// uninterrupted run). Every remaining column is a deterministic function of
// the job: comparing CanonicalStats across backends, restarts and machines
// must be an exact byte-for-byte match.
func CanonicalStats(st mpc.Stats) mpc.Stats {
	st.CheckpointBytes = 0
	st.ResumeReplayRounds = 0
	return st
}

// killAll tears down every worker process group (idempotent; used for both
// abort and end-of-run cleanup).
func (s *supervisor) killAll() {
	for _, p := range s.procs {
		if p != nil && p.cmd != nil {
			s.stop(p)
		}
	}
}
