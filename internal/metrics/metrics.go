// Package metrics renders the evaluation's tables and figures: fixed-width
// text tables (the form the experiment harness prints and EXPERIMENTS.md
// records), CSV for downstream tooling, and ASCII line plots for the
// "figure" experiments.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with Cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.Rows = append(t.Rows, row)
}

// Cell formats a single value: floats get a compact representation, other
// values use their default formatting.
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		// Widening a float32 directly exposes the binary representation's
		// excess decimals (0.3 → 0.30000001192092896). Round-trip through the
		// shortest decimal that still parses back to x at 32-bit precision.
		short := strconv.FormatFloat(float64(x), 'g', -1, 32)
		f, err := strconv.ParseFloat(short, 64)
		if err != nil {
			return short
		}
		return formatFloat(f)
	case string:
		return x
	default:
		return fmt.Sprint(v)
	}
}

func formatFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatFloat(f, 'f', 0, 64)
	case math.Abs(f) >= 1000 || (math.Abs(f) < 0.001 && f != 0):
		return strconv.FormatFloat(f, 'g', 4, 64)
	default:
		return strconv.FormatFloat(f, 'f', 3, 64)
	}
}

// Render writes the table as aligned fixed-width text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table in CSV form (header row first). Cells
// containing commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(strconv.Quote(cell))
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is a named sequence of (x, y) points for figure rendering.
type Series struct {
	Name string
	X, Y []float64
}

// Plot renders one or more series as an ASCII line chart of the given size
// (width×height characters for the plotting area). Each series is drawn with
// its own glyph; a legend follows the chart.
func Plot(w io.Writer, title string, width, height int, series ...Series) error {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", title)
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-row][col] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "y: [%s .. %s]\n", formatFloat(minY), formatFloat(maxY))
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+-")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "x: [%s .. %s]\n", formatFloat(minX), formatFloat(maxX))
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
