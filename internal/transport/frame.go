// Package transport implements the multi-process message exchange behind the
// mpc.Transport interface: workers running replicated deterministic
// simulations swap each superstep's message boxes as length-prefixed,
// CRC-framed records over byte pipes, with each worker authoritative for the
// messages sent by the machines it owns.
//
// The execution model is SPMD replication with authoritative exchange. Every
// worker process runs the full deterministic driver (the driver programming
// model holds global state that per-machine step closures fill in, so
// machine-partitioned computation is impossible without rewriting every
// algorithm). What the wire adds is not partitioned compute but physical
// fault isolation and cross-process verification: at every committed
// superstep each worker ships the messages produced by its owned machine
// block, and every receiver checks the authoritative bytes word-for-word
// against its local replica before delivering. A diverged worker — cosmic
// ray, bad memory, heterogeneous build — is detected at the very barrier
// where it diverged instead of corrupting the output silently, and a crashed
// worker is a real OS process the supervisor can kill and restart (see
// internal/supervise).
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Frame types. Workers send Hello once after start, Messages at every
// exchanged superstep, Heartbeat on a wall-clock ticker, and exactly one of
// Result or Error before exiting. The supervisor relays Messages frames
// between workers and sends Stop to ask a worker to abort at its next
// barrier.
const (
	FrameHello byte = iota + 1
	FrameMessages
	FrameHeartbeat
	FrameResult
	FrameError
	FrameStop
)

// Frame is one wire record.
type Frame struct {
	// Type is one of the Frame* constants.
	Type byte
	// Worker identifies the origin worker (or the target, for Stop).
	Worker int
	// Round is the model round the frame belongs to: the exchanged round
	// for Messages, the latest round entered for Heartbeat, the join round
	// for Hello.
	Round int
	// Payload is the type-specific body.
	Payload []byte
}

// frameMagic leads every frame; a reader that sees anything else is looking
// at a torn or corrupt stream and must treat the connection as dead.
var frameMagic = [4]byte{'M', 'P', 'R', 'W'}

// headerLen is magic(4) + type(1) + worker(4) + round(8) + paylen(4) + crc(4).
const headerLen = 25

// MaxFramePayload bounds one frame body so a corrupt length prefix cannot
// drive an allocation by itself.
const MaxFramePayload = 1 << 30

// castagnoli is the CRC-32C table, matching internal/durable's framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrFraming is wrapped by every malformed-stream error: bad magic, bad
// checksum, oversized payload, torn header.
var ErrFraming = errors.New("transport: malformed frame")

// appendHeader renders the frame header with the CRC over the 17 bytes
// following the magic plus the payload.
func appendHeader(b []byte, f Frame) []byte {
	b = append(b, frameMagic[:]...)
	b = append(b, f.Type)
	b = binary.LittleEndian.AppendUint32(b, uint32(f.Worker))
	b = binary.LittleEndian.AppendUint64(b, uint64(f.Round))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Payload)))
	crc := crc32.Update(0, castagnoli, b[len(b)-17:])
	crc = crc32.Update(crc, castagnoli, f.Payload)
	return binary.LittleEndian.AppendUint32(b, crc)
}

// WriteFrame writes one frame. The header and payload go out in a single
// Write call so a frame is never interleaved with another writer's bytes as
// long as callers serialize on the same Conn.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFramePayload {
		return fmt.Errorf("%w: payload %d bytes exceeds %d", ErrFraming, len(f.Payload), MaxFramePayload)
	}
	buf := make([]byte, 0, headerLen+len(f.Payload))
	buf = appendHeader(buf, f)
	buf = append(buf, f.Payload...)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame, verifying magic and checksum. io.EOF is
// returned untranslated when the stream ends cleanly between frames; any
// mid-frame truncation or corruption wraps ErrFraming.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: %v", ErrFraming, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Frame{}, fmt.Errorf("%w: torn header: %v", ErrFraming, err)
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad magic %q", ErrFraming, hdr[:4])
	}
	f := Frame{
		Type:   hdr[4],
		Worker: int(int32(binary.LittleEndian.Uint32(hdr[5:9]))),
		Round:  int(int64(binary.LittleEndian.Uint64(hdr[9:17]))),
	}
	paylen := binary.LittleEndian.Uint32(hdr[17:21])
	wantCRC := binary.LittleEndian.Uint32(hdr[21:25])
	if paylen > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: payload %d bytes exceeds %d", ErrFraming, paylen, MaxFramePayload)
	}
	f.Payload = make([]byte, paylen)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return Frame{}, fmt.Errorf("%w: torn payload: %v", ErrFraming, err)
	}
	crc := crc32.Update(0, castagnoli, hdr[4:21])
	crc = crc32.Update(crc, castagnoli, f.Payload)
	if crc != wantCRC {
		return Frame{}, fmt.Errorf("%w: checksum mismatch", ErrFraming)
	}
	return f, nil
}

// Conn is one worker's frame connection: a buffered single-goroutine reader
// plus a mutex-serialized writer, so the heartbeat ticker and the exchange
// path can share the outbound pipe without interleaving frames.
type Conn struct {
	r *bufio.Reader

	mu sync.Mutex
	w  io.Writer
}

// NewConn wraps a read/write byte-stream pair (typically the worker's stdin
// and stdout, or the supervisor's ends of the same pipes).
func NewConn(r io.Reader, w io.Writer) *Conn {
	return &Conn{r: bufio.NewReaderSize(r, 1<<16), w: w}
}

// Write sends one frame, serialized against concurrent writers.
func (c *Conn) Write(f Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return WriteFrame(c.w, f)
}

// Read receives the next frame. Only one goroutine may read.
func (c *Conn) Read() (Frame, error) {
	return ReadFrame(c.r)
}
