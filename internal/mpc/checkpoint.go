package mpc

// Checkpointer exposes a driver's per-machine mutable state to the cluster's
// Pregel-style superstep recovery. Snapshot(m) serializes machine m's state
// into machine words; Restore(m, data) overwrites it from a snapshot. The
// cluster snapshots every Config.CheckpointEvery supersteps (charging the
// written words to Stats.CheckpointWords) and, when an injected crash aborts
// a superstep, restores the crashed machine and charges the replay distance
// back to the last checkpoint.
//
// Because machine-local computation is deterministic, replaying the
// superstep log from the last checkpoint reconstructs exactly the state the
// simulator still holds; recovery therefore drives the machine's state
// through a Snapshot/Restore round-trip (exercising both hooks — a lossy
// Snapshot or a buggy Restore corrupts the run and fails the bit-identity
// tests) while the replay's rounds and words are charged to
// Stats.RecoveryRounds and Stats.ReplayedWords.
type Checkpointer interface {
	// Snapshot returns machine m's state as machine words. The returned
	// slice must not alias live driver state.
	Snapshot(m int) []uint64
	// Restore overwrites machine m's state from a Snapshot payload.
	Restore(m int, data []uint64)
}

// FuncCheckpointer adapts two closures to the Checkpointer interface.
type FuncCheckpointer struct {
	SnapshotFn func(m int) []uint64
	RestoreFn  func(m int, data []uint64)
}

// Snapshot implements Checkpointer.
func (f FuncCheckpointer) Snapshot(m int) []uint64 { return f.SnapshotFn(m) }

// Restore implements Checkpointer.
func (f FuncCheckpointer) Restore(m int, data []uint64) { f.RestoreFn(m, data) }

// SetCheckpointer registers the driver state hooks used by superstep
// recovery. Checkpoints are taken only when Config.CheckpointEvery > 0; with
// no checkpointer (or CheckpointEvery == 0) crashes are still recovered, but
// from the barrier-committed state of the previous superstep (replay
// distance 1), with no state words to restore.
func (c *Cluster) SetCheckpointer(cp Checkpointer) { c.ckpt = cp }

// maybeCheckpoint snapshots every machine's state at the superstep barrier
// before round executes: at round 1 (the baseline) and then every
// CheckpointEvery rounds. Written words are charged to CheckpointWords.
func (c *Cluster) maybeCheckpoint(round int) {
	if c.ckpt == nil || c.cfg.CheckpointEvery <= 0 {
		return
	}
	if c.snapshots != nil && (round-1)%c.cfg.CheckpointEvery != 0 {
		return
	}
	if c.snapshots == nil {
		c.snapshots = make([][]uint64, c.cfg.Machines)
	}
	for m := range c.snapshots {
		snap := c.ckpt.Snapshot(m)
		c.snapshots[m] = snap
		c.stats.CheckpointWords += int64(len(snap))
	}
	c.ckptRound = round - 1
}

// recoverCrashes restarts the machines that crashed during an aborted
// attempt of the given round: their state is restored through the
// Snapshot/Restore hooks (see Checkpointer), the replay distance back to the
// last checkpoint is charged to RecoveryRounds, and the restored state plus
// the aborted attempt's discarded traffic are charged to ReplayedWords.
func (c *Cluster) recoverCrashes(round int, crashed []int) {
	c.stats.RecoveredCrashes += len(crashed)
	replay := 1
	if c.ckpt != nil && c.cfg.CheckpointEvery > 0 {
		if d := round - c.ckptRound; d > replay {
			replay = d
		}
		for _, m := range crashed {
			if c.snapshots != nil && c.snapshots[m] != nil {
				c.stats.ReplayedWords += int64(len(c.snapshots[m]))
			}
			c.ckpt.Restore(m, c.ckpt.Snapshot(m))
		}
	}
	c.stats.RecoveryRounds += replay
	c.discardOutboxes(true)
}

// discardOutboxes throws away everything queued during an aborted superstep
// attempt, optionally charging the discarded words to ReplayedWords (re-sent
// on the retry).
func (c *Cluster) discardOutboxes(charge bool) {
	for m := range c.outboxes {
		if charge {
			for _, msg := range c.outboxes[m] {
				c.stats.ReplayedWords += int64(len(msg.Payload))
			}
		}
		c.outboxes[m] = nil
	}
}
