package supervise

import (
	"encoding/json"
	"fmt"
	"io"
)

// LifecycleSchema identifies the supervisor's lifecycle event stream: a
// JSONL file whose first line is a LifecycleHeader and whose remaining lines
// are LifecycleEvents — the restart timeline cmd/traceview renders.
const LifecycleSchema = "mprs-lifecycle/1"

// LifecycleHeader is the first line of a lifecycle stream.
type LifecycleHeader struct {
	Schema      string `json:"schema"`
	Workers     int    `json:"workers"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
	MaxRestarts int    `json:"max_restarts"`
}

// LifecycleEvent is one supervisor action. Events are deterministic where
// possible: seq, kind, worker, attempt and backoff_ms are functions of the
// job and the (deterministic) kill schedule; round is the deterministic
// superstep progress for frame-triggered events and best-effort for
// wall-clock-triggered ones (stalls). No wall-clock timestamps appear — the
// timeline orders by seq.
type LifecycleEvent struct {
	Seq       int    `json:"seq"`
	Kind      string `json:"kind"` // start, kill, crash, stall, backoff, restart, result, error, stop, abort, quarantine, degrade, chaos, done
	Worker    int    `json:"worker"`
	Round     int    `json:"round"`
	Attempt   int    `json:"attempt,omitempty"`
	BackoffMS int64  `json:"backoff_ms,omitempty"`
	Note      string `json:"note,omitempty"`
}

// lifecycleWriter emits the JSONL stream; a nil writer makes every method a
// no-op so call sites stay unconditional.
type lifecycleWriter struct {
	w   io.Writer
	seq int
	err error // first write failure; reported once at Run's end
}

func newLifecycleWriter(w io.Writer, hdr LifecycleHeader) *lifecycleWriter {
	lw := &lifecycleWriter{w: w}
	if w == nil {
		return lw
	}
	hdr.Schema = LifecycleSchema
	lw.writeJSON(hdr)
	return lw
}

func (lw *lifecycleWriter) writeJSON(v any) {
	if lw.w == nil || lw.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		lw.err = err
		return
	}
	if _, err := lw.w.Write(append(b, '\n')); err != nil {
		lw.err = fmt.Errorf("supervise: lifecycle write: %w", err)
	}
}

func (lw *lifecycleWriter) emit(ev LifecycleEvent) {
	lw.seq++
	ev.Seq = lw.seq
	lw.writeJSON(ev)
}
