// Command mprs-bench runs the perf-regression harness and diffs its
// artifacts.
//
// Usage:
//
//	mprs-bench run                      # full registry -> BENCH_<stamp>.json
//	mprs-bench run -quick -out ci.json  # CI tier, explicit output
//	mprs-bench run -workloads t2-star   # subset of the registry
//	mprs-bench run -strip-host          # zero wall-clock (baseline artifact)
//	mprs-bench list                     # registry workloads
//	mprs-bench diff OLD NEW             # compare two artifacts (or traces)
//	mprs-bench -version
//
// `diff` accepts either two BENCH_*.json artifacts or two JSONL trace files
// (detected by content). Deterministic columns must match exactly; wall-clock
// is advisory unless -wall-ratio arms a band. Exit status is 2 when a hard
// regression is found.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/rulingset/mprs/internal/bench"
	"github.com/rulingset/mprs/internal/buildinfo"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mprs-bench:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(args []string, out *os.File) (int, error) {
	if len(args) == 0 {
		return 1, fmt.Errorf("usage: mprs-bench <run|list|diff> [flags] (or -version)")
	}
	switch args[0] {
	case "-version", "--version", "version":
		fmt.Fprintln(out, buildinfo.CLIVersion("mprs-bench"))
		return 0, nil
	case "run":
		return runBench(args[1:], out)
	case "list":
		return runList(args[1:], out)
	case "diff":
		return runDiff(args[1:], out)
	}
	return 1, fmt.Errorf("unknown subcommand %q (want run, list or diff)", args[0])
}

func runBench(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("mprs-bench run", flag.ContinueOnError)
	var (
		quick     = fs.Bool("quick", false, "run the reduced CI tier")
		workloads = fs.String("workloads", "", "comma-separated workload names (default: all)")
		seed      = fs.Int64("seed", 1, "workload/algorithm seed")
		outPath   = fs.String("out", "", "output path (default BENCH_<stamp>.json)")
		stripHost = fs.Bool("strip-host", false, "zero host-dependent columns (baseline artifact)")
		quiet     = fs.Bool("q", false, "suppress per-row progress")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if fs.NArg() != 0 {
		return 1, fmt.Errorf("run takes no positional arguments")
	}
	cfg := bench.RunConfig{Quick: *quick, Seed: *seed, StripHost: *stripHost}
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			cfg.Workloads = append(cfg.Workloads, strings.TrimSpace(w))
		}
	}
	if !*quiet {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}
	f, err := bench.Run(cfg)
	if err != nil {
		return 1, err
	}
	path := *outPath
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("20060102T150405Z"))
	}
	if err := f.WriteFile(path); err != nil {
		return 1, err
	}
	fmt.Fprintf(out, "wrote %s (%d rows)\n", path, len(f.Results))
	return 0, nil
}

func runList(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("mprs-bench list", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	for _, w := range bench.Registry() {
		fmt.Fprintf(out, "%-14s %-3s %s\n", w.Name, w.Experiment, w.Doc)
		fmt.Fprintf(out, "%-14s     spec=%s quick=%s algos=%s\n",
			"", w.Spec, w.QuickSpec, strings.Join(w.Algos, ","))
	}
	return 0, nil
}

func runDiff(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("mprs-bench diff", flag.ContinueOnError)
	var (
		wallRatio    = fs.Float64("wall-ratio", 0, "arm the wall-clock band: drift beyond [1/r, r] is a regression (0 = advisory)")
		allowMissing = fs.Bool("allow-missing", false, "rows present in only one artifact are advisory, not regressions")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if fs.NArg() != 2 {
		return 1, fmt.Errorf("usage: mprs-bench diff [flags] OLD NEW")
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	oldKind, err := sniff(oldPath)
	if err != nil {
		return 1, err
	}
	newKind, err := sniff(newPath)
	if err != nil {
		return 1, err
	}
	if oldKind != newKind {
		return 1, fmt.Errorf("cannot diff %s artifact %s against %s artifact %s", oldKind, oldPath, newKind, newPath)
	}
	var deltas []bench.Delta
	switch oldKind {
	case "trace":
		deltas, err = bench.DiffTraces(oldPath, newPath)
	default:
		var oldF, newF *bench.File
		if oldF, err = bench.ReadFile(oldPath); err == nil {
			if newF, err = bench.ReadFile(newPath); err == nil {
				deltas = bench.Diff(oldF, newF, bench.DiffOptions{WallRatio: *wallRatio, AllowMissing: *allowMissing})
			}
		}
	}
	if err != nil {
		return 1, err
	}
	for _, d := range deltas {
		fmt.Fprintln(out, d)
	}
	if bench.HasRegression(deltas) {
		fmt.Fprintf(out, "FAIL: %s -> %s\n", oldPath, newPath)
		return 2, nil
	}
	fmt.Fprintf(out, "OK: %s matches %s on all deterministic columns\n", newPath, oldPath)
	return 0, nil
}

// sniff classifies an artifact file as a bench JSON ("bench") or JSONL trace
// ("trace") by its leading bytes: traces are line-delimited objects starting
// with a schema or round key, bench artifacts with an indented manifest.
func sniff(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	buf := make([]byte, 64)
	n, _ := f.Read(buf)
	head := bytes.TrimLeft(buf[:n], " \t\r\n")
	switch {
	case bytes.HasPrefix(head, []byte(`{"schema":"mprs-trace/`)),
		bytes.HasPrefix(head, []byte(`{"round"`)):
		return "trace", nil
	default:
		return "bench", nil
	}
}
