package mpc

import (
	"math/rand"
	"testing"

	"github.com/rulingset/mprs/internal/graph"
)

func randomTestGraph(t *testing.T, seed int64, n int, p float64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
			}
		}
	}
	g, err := graph.New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDistributedPowerMatchesCentralized: the message-exchange power
// computation must produce exactly the BFS-defined distance closure, for
// every exponent and machine count.
func TestDistributedPowerMatchesCentralized(t *testing.T) {
	for trial := int64(0); trial < 5; trial++ {
		g := randomTestGraph(t, trial, 25, 0.12)
		for _, k := range []int{1, 2, 3, 5} {
			want, err := g.Power(k, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, machines := range []int{1, 3, 7} {
				c, err := NewCluster(Config{Machines: machines}, g.N())
				if err != nil {
					t.Fatal(err)
				}
				d, err := Distribute(c, g)
				if err != nil {
					t.Fatal(err)
				}
				got, err := d.Power(k, 0)
				if err != nil {
					t.Fatalf("trial %d k=%d machines=%d: %v", trial, k, machines, err)
				}
				if got.N() != want.N() || got.M() != want.M() {
					t.Fatalf("trial %d k=%d machines=%d: got n=%d m=%d, want n=%d m=%d",
						trial, k, machines, got.N(), got.M(), want.N(), want.M())
				}
				for v := 0; v < g.N(); v++ {
					gw, ww := got.Neighbors(v), want.Neighbors(v)
					if len(gw) != len(ww) {
						t.Fatalf("trial %d k=%d machines=%d: adjacency of %d differs", trial, k, machines, v)
					}
					for i := range gw {
						if gw[i] != ww[i] {
							t.Fatalf("trial %d k=%d machines=%d: adjacency of %d differs", trial, k, machines, v)
						}
					}
				}
			}
		}
	}
}

func TestDistributedPowerCostsRounds(t *testing.T) {
	g := randomTestGraph(t, 9, 30, 0.1)
	c, err := NewCluster(Config{Machines: 4}, g.N())
	if err != nil {
		t.Fatal(err)
	}
	d, err := Distribute(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Power(3, 0); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Rounds == 0 || st.Words == 0 {
		t.Fatalf("exponentiation cost nothing: %+v", st)
	}
	// k=3 → bits 11: composes for bit0 (acc∘base), base², bit1 (acc∘base²):
	// three composes of two rounds each, but the first is the identity
	// shortcut (free). So at most 6, at least 4 rounds.
	if st.Rounds < 4 || st.Rounds > 6 {
		t.Fatalf("k=3 used %d rounds, want 4..6", st.Rounds)
	}
}

func TestDistributedPowerEdgeBudget(t *testing.T) {
	// A star's square is a clique on the leaves: n²/2 edges blow a small
	// budget.
	var edges []graph.Edge
	for v := 1; v < 40; v++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(v)})
	}
	g, err := graph.New(40, edges)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{Machines: 2}, g.N())
	if err != nil {
		t.Fatal(err)
	}
	d, err := Distribute(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Power(2, 50); err == nil {
		t.Fatal("edge budget not enforced")
	}
}

func TestDistributedPowerRejectsBadExponent(t *testing.T) {
	g := randomTestGraph(t, 1, 5, 0.5)
	c, err := NewCluster(Config{Machines: 2}, g.N())
	if err != nil {
		t.Fatal(err)
	}
	d, err := Distribute(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Power(0, 0); err == nil {
		t.Fatal("exponent 0 accepted")
	}
}
