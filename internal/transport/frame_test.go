package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameHello, Worker: 0, Round: 0},
		{Type: FrameMessages, Worker: 2, Round: 41, Payload: []byte("hello frames")},
		{Type: FrameHeartbeat, Worker: 1, Round: 7},
		{Type: FrameResult, Worker: 3, Round: 99, Payload: bytes.Repeat([]byte{0xAB}, 1<<16)},
		{Type: FrameError, Worker: 0, Round: 5, Payload: []byte(`{"message":"x"}`)},
		{Type: FrameStop, Worker: 0, Round: 0},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write %+v: %v", f, err)
		}
	}
	r := NewConn(&buf, io.Discard)
	for i, want := range frames {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Worker != want.Worker || got.Round != want.Round || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: FrameMessages, Worker: 1, Round: 3, Payload: []byte("payload bytes")}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Every single-bit flip anywhere in the frame must surface as ErrFraming
	// (magic mismatch or CRC mismatch), never as silent acceptance.
	for i := range whole {
		for bit := 0; bit < 8; bit++ {
			dam := append([]byte(nil), whole...)
			dam[i] ^= 1 << bit
			c := NewConn(bytes.NewReader(dam), io.Discard)
			f, err := c.Read()
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted: %+v", i, bit, f)
			}
			if !errors.Is(err, ErrFraming) {
				t.Fatalf("bit flip at byte %d bit %d: %v, want ErrFraming", i, bit, err)
			}
		}
	}

	// Every truncation point: a torn frame is ErrFraming, an empty stream is
	// clean EOF.
	for cut := 0; cut < len(whole); cut++ {
		c := NewConn(bytes.NewReader(whole[:cut]), io.Discard)
		_, err := c.Read()
		if cut == 0 {
			if !errors.Is(err, io.EOF) || errors.Is(err, ErrFraming) {
				t.Fatalf("empty stream: %v, want clean io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, ErrFraming) {
			t.Fatalf("truncated at %d/%d: %v, want ErrFraming", cut, len(whole), err)
		}
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	var buf bytes.Buffer
	f := Frame{Type: FrameMessages, Worker: 0, Round: 1, Payload: make([]byte, 8)}
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	// Forge the payload length far beyond MaxFramePayload, leaving the rest
	// intact: the reader must reject on the declared size before allocating.
	b := buf.Bytes()
	b[17], b[18], b[19], b[20] = 0xFF, 0xFF, 0xFF, 0xFF
	c := NewConn(bytes.NewReader(b), io.Discard)
	if _, err := c.Read(); !errors.Is(err, ErrFraming) {
		t.Fatalf("oversize payload: %v, want ErrFraming", err)
	}
}

func TestOwnerOf(t *testing.T) {
	for _, tc := range []struct {
		total, workers int
	}{
		{1, 1}, {8, 1}, {8, 2}, {8, 3}, {9, 3}, {10, 3}, {7, 7}, {100, 16},
	} {
		per := (tc.total + tc.workers - 1) / tc.workers
		counts := make([]int, tc.workers)
		prev := 0
		for m := 0; m < tc.total; m++ {
			o := OwnerOf(m, tc.total, tc.workers)
			if o < 0 || o >= tc.workers {
				t.Fatalf("OwnerOf(%d, %d, %d) = %d out of range", m, tc.total, tc.workers, o)
			}
			if o < prev {
				t.Fatalf("OwnerOf not monotone at m=%d (total=%d workers=%d)", m, tc.total, tc.workers)
			}
			prev = o
			counts[o]++
		}
		for w, n := range counts {
			if n > per {
				t.Fatalf("worker %d owns %d > %d machines (total=%d workers=%d)", w, n, per, tc.total, tc.workers)
			}
		}
		// Every worker the supervisor would spawn must own at least one
		// machine whenever workers <= total (the supervisor enforces that).
		if tc.workers <= tc.total {
			for w, n := range counts {
				if n == 0 {
					t.Fatalf("worker %d owns no machines (total=%d workers=%d)", w, tc.total, tc.workers)
				}
			}
		}
	}
}
